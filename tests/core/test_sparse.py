"""Sparse stacked sweeps: CSR/dense parity, the auto heuristic, patching."""

import numpy as np
import pytest

from repro.arch import rf64
from repro.core import (
    SPARSE_DENSITY_CUTOFF,
    SPARSE_MIN_STACKED,
    AnalysisContext,
    SparseSweep,
    TDFAConfig,
    ThermalDataflowAnalysis,
    choose_sweep_form,
    estimate_sweep_density,
    patch_sweep,
    sparsify_sweep,
    sweep_density,
)
from repro.core.transfer import (
    affine_merge_plan,
    compile_sweep,
    sweep_signature,
)
from repro.dataflow.freq import static_profile
from repro.errors import DataflowError
from repro.ir import parse_instruction
from repro.ir.cfg import reverse_postorder
from repro.regalloc import allocate_linear_scan
from repro.workloads import load, workload_names


@pytest.fixture(scope="module")
def machine():
    return rf64()


def _allocated(name, machine):
    return allocate_linear_scan(load(name).function, machine).function


def _sweep_inputs(function, machine, context):
    """(compiled blocks, plan, rpo, num_nodes, signature) for *function*."""
    rpo = reverse_postorder(function)
    plan = affine_merge_plan(
        function, rpo, function.predecessors_map(),
        static_profile(function), "freq", function.entry.name,
    )
    cache = context.transfer_cache()
    compiled = {name: cache.block(function.block(name)) for name in rpo}
    n = context.model.grid.num_nodes
    return compiled, plan, rpo, n, sweep_signature(function, rpo)


class TestSparseAgreement:
    """The CSR sweep is the *same matrix* — traces must match exactly."""

    DELTA = 1e-5

    @pytest.mark.parametrize("kernel", workload_names())
    def test_sparse_matches_batched_and_blockwise(self, machine, kernel):
        function = _allocated(kernel, machine)
        results = {}
        for sweep in ("blockwise", "batched", "sparse"):
            analysis = ThermalDataflowAnalysis(
                machine,
                config=TDFAConfig(delta=self.DELTA, engine="compiled",
                                  sweep=sweep),
            )
            results[sweep] = analysis.run(function)
        blockwise, batched, sparse = (
            results["blockwise"], results["batched"], results["sparse"]
        )
        assert sparse.converged
        assert sparse.iterations == blockwise.iterations == batched.iterations
        assert np.allclose(sparse.delta_history, blockwise.delta_history,
                           rtol=1e-9, atol=1e-12)
        worst = max(
            sparse.after[key].max_abs_diff(blockwise.after[key])
            for key in blockwise.after
        )
        assert worst <= 2 * self.DELTA, kernel

    def test_sparse_label_reported(self, machine):
        function = _allocated("fir", machine)
        result = ThermalDataflowAnalysis(
            machine, config=TDFAConfig(sweep="sparse")
        ).run(function)
        assert result.sweep == "sparse"
        assert result.engine == "compiled"

    def test_sparse_with_max_merge_rejected(self):
        with pytest.raises(DataflowError):
            TDFAConfig(merge="max", sweep="sparse")


class TestChipAgreement:
    """The die-level model is where the heuristic actually flips to CSR."""

    DELTA = 0.01

    def test_sparse_matches_blockwise_on_chip(self, machine):
        function = _allocated("iir", machine)
        sparse = AnalysisContext.for_chip(machine).analyze(
            function, delta=self.DELTA, sweep="sparse"
        )
        blockwise = AnalysisContext.for_chip(machine).analyze(
            function, delta=self.DELTA, sweep="blockwise"
        )
        assert sparse.converged and blockwise.converged
        assert sparse.iterations == blockwise.iterations
        worst = max(
            sparse.block_out[name].max_abs_diff(blockwise.block_out[name])
            for name in blockwise.block_out
        )
        assert worst <= 2 * self.DELTA

    def test_auto_upgrades_big_stacked_maps_to_sparse(self, machine):
        function = _allocated("matmul", machine)
        result = AnalysisContext.for_chip(machine).analyze(
            function, delta=self.DELTA, sweep="auto"
        )
        assert result.sweep == "sparse"

    def test_auto_keeps_small_stacked_maps_dense(self, machine):
        function = _allocated("fib", machine)
        result = AnalysisContext(machine).analyze(function, sweep="auto")
        assert result.sweep == "batched"


class TestHeuristic:
    """``choose_sweep_form`` is a pure function of plan structure."""

    def _chain_plan(self, m):
        rpo = [f"b{i}" for i in range(m)]
        plan = {rpo[0]: [(None, 1.0)]}
        for prev, name in zip(rpo, rpo[1:]):
            plan[name] = [(prev, 1.0)]
        return plan, rpo

    def test_small_stacked_maps_stay_dense(self):
        plan, rpo = self._chain_plan(4)
        assert len(rpo) * 64 < SPARSE_MIN_STACKED
        assert choose_sweep_form(plan, rpo, 64) == "dense"

    def test_big_low_density_maps_go_sparse(self):
        plan, rpo = self._chain_plan(16)
        assert len(rpo) * 64 >= SPARSE_MIN_STACKED
        assert estimate_sweep_density(plan, rpo) <= SPARSE_DENSITY_CUTOFF
        assert choose_sweep_form(plan, rpo, 64) == "sparse"

    def test_dense_plans_stay_dense_at_any_size(self):
        # All-to-all joins: every row references every block.
        rpo = [f"b{i}" for i in range(16)]
        plan = {rpo[0]: [(None, 1.0)]}
        weight = 1.0 / len(rpo)
        for name in rpo[1:]:
            plan[name] = [(src, weight) for src in rpo]
        assert estimate_sweep_density(plan, rpo) > SPARSE_DENSITY_CUTOFF
        assert choose_sweep_form(plan, rpo, 64) == "dense"

    @pytest.mark.parametrize("kernel", ["fir", "matmul", "crc32"])
    def test_estimate_is_exact_at_block_granularity(self, machine, kernel):
        """The plan-predicted density equals the built matrix's density."""
        function = _allocated(kernel, machine)
        context = AnalysisContext(machine)
        compiled, plan, rpo, n, signature = _sweep_inputs(
            function, machine, context
        )
        sweep = compile_sweep(compiled, plan, rpo, n, signature)
        assert estimate_sweep_density(plan, rpo) == pytest.approx(
            sweep_density(sweep)
        )

    def test_sparsify_preserves_the_map(self, machine):
        function = _allocated("fir", machine)
        context = AnalysisContext(machine)
        compiled, plan, rpo, n, signature = _sweep_inputs(
            function, machine, context
        )
        dense = compile_sweep(compiled, plan, rpo, n, signature)
        sparse = sparsify_sweep(dense)
        assert isinstance(sparse, SparseSweep)
        assert sparse.form == "sparse" and dense.form == "dense"
        assert np.array_equal(sparse.matrix.toarray(), dense.matrix)
        assert np.array_equal(sparse.in_matrix.toarray(), dense.in_matrix)
        assert sparse.nnz == dense.nnz
        assert sparse.nbytes < dense.nbytes


class TestPatchSweep:
    """Row patching must reproduce a cold recompile bit for bit."""

    @pytest.mark.parametrize("form", ["dense", "sparse"])
    def test_patched_rows_equal_cold_recompile(self, machine, form):
        function = _allocated("matmul", machine)
        context = AnalysisContext(machine)
        compiled, plan, rpo, n, signature = _sweep_inputs(
            function, machine, context
        )
        old = compile_sweep(compiled, plan, rpo, n, signature)
        if form == "sparse":
            old = sparsify_sweep(old)

        # In-place edit keeping the instruction count (and signature).
        edited = rpo[len(rpo) // 2]
        function.blocks[edited].instructions[0] = parse_instruction(
            "r1 = add r2, r3"
        )
        context.invalidate(function, blocks=[edited])
        compiled2, plan2, rpo2, _, signature2 = _sweep_inputs(
            function, machine, context
        )
        cold = compile_sweep(compiled2, plan2, rpo2, n, signature2)
        patched = patch_sweep(
            old, compiled2, plan2, rpo2, n, signature2, {edited}
        )
        assert patched.form == form
        for field in ("matrix", "entry_matrix", "offset",
                      "in_matrix", "in_entry_matrix", "in_offset"):
            got = getattr(patched, field)
            if hasattr(got, "toarray"):
                got = got.toarray()
            assert np.array_equal(got, getattr(cold, field)), field

    def test_unedited_later_block_rows_survive_untouched(self, machine):
        """Back/self edges contribute ``w·I`` blocks — a changed *later*
        block never invalidates an earlier row's expression."""
        function = _allocated("matmul", machine)
        context = AnalysisContext(machine)
        compiled, plan, rpo, n, signature = _sweep_inputs(
            function, machine, context
        )
        old = compile_sweep(compiled, plan, rpo, n, signature)
        edited = rpo[-1]
        function.blocks[edited].instructions[0] = parse_instruction(
            "r1 = add r2, r3"
        )
        context.invalidate(function, blocks=[edited])
        compiled2, plan2, rpo2, _, signature2 = _sweep_inputs(
            function, machine, context
        )
        patched = patch_sweep(
            old, compiled2, plan2, rpo2, n, signature2, {edited}
        )
        i = len(rpo) - 1
        rows_before = old.matrix[: i * n]
        rows_after = patched.matrix[: i * n]
        assert np.array_equal(rows_before, rows_after)
