"""Compiled affine block transfers: composition, caching, engine parity."""

import numpy as np
import pytest

from repro.arch import rf16, rf64
from repro.core import (
    AffineTransfer,
    BlockTransferCache,
    TDFAConfig,
    ThermalDataflowAnalysis,
    compile_block,
)
from repro.core.estimator import ExactPlacement, InstructionPowerModel
from repro.errors import DataflowError
from repro.regalloc import allocate_linear_scan
from repro.thermal import RFThermalModel, ThermalState
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def model(machine):
    return RFThermalModel(machine.geometry, energy=machine.energy)


@pytest.fixture(scope="module")
def power_model(machine, model):
    return InstructionPowerModel(
        machine=machine,
        model=model,
        placement=ExactPlacement(machine.geometry.num_registers),
    )


@pytest.fixture(scope="module")
def allocated_fir(machine):
    return allocate_linear_scan(load("fir").function, machine).function


class TestAffineTransfer:
    def test_identity_is_noop(self, model):
        n = model.grid.num_nodes
        ident = AffineTransfer.identity(n)
        temps = model.ambient_state().temperatures
        assert np.array_equal(ident.apply(temps), temps)

    def test_then_composes_in_order(self, model):
        n = model.grid.num_nodes
        rng = np.random.default_rng(3)
        f = AffineTransfer(rng.uniform(size=(n, n)), rng.uniform(size=n), key="f")
        g = AffineTransfer(rng.uniform(size=(n, n)), rng.uniform(size=n), key="g")
        x = rng.uniform(size=n)
        assert np.allclose(f.then(g).apply(x), g.apply(f.apply(x)))
        assert f.then(g).key == "f;g"

    def test_apply_state_preserves_grid(self, model):
        n = model.grid.num_nodes
        ident = AffineTransfer.identity(n)
        state = model.ambient_state()
        assert ident.apply_state(state).grid is state.grid

    def test_from_step_relaxes_toward_target(self, model, machine):
        dt = machine.energy.cycle_time
        op = model.step_operator(dt)
        target = np.full(model.grid.num_nodes, 330.0)
        step = AffineTransfer.from_step(op, target)
        temps = model.ambient_state().temperatures
        moved = step.apply(temps)
        # One step moves every node strictly toward the hotter target.
        assert np.all(moved > temps)
        assert np.all(moved < target)

    def test_rc_transfers_are_contractions(self, model, power_model, machine,
                                           allocated_fir):
        dt = machine.energy.cycle_time
        for block in allocated_fir.blocks.values():
            compiled = compile_block(block, model, power_model, dt)
            if block.instructions:
                assert compiled.transfer.contraction_factor() < 1.0


class TestCompileBlock:
    def test_block_transfer_equals_instruction_chain(
        self, machine, model, power_model, allocated_fir
    ):
        """A_B, b_B must reproduce stepping every instruction in order."""
        dt = machine.energy.cycle_time
        ambient = model.ambient_state()
        for block in allocated_fir.blocks.values():
            compiled = compile_block(block, model, power_model, dt)
            temps = ambient.temperatures
            for inst in block.instructions:
                power = power_model.total_power(inst, ambient)
                target = model.steady_state(power).temperatures
                op = model.step_operator(dt)
                temps = target + op @ (temps - target)
            assert np.allclose(
                compiled.transfer.apply(ambient.temperatures), temps, atol=1e-9
            )

    def test_reconstruct_matches_transfer_endpoint(
        self, machine, model, power_model, allocated_fir
    ):
        dt = machine.energy.cycle_time
        entry = model.ambient_state().temperatures + 2.0
        for block in allocated_fir.blocks.values():
            compiled = compile_block(block, model, power_model, dt)
            states = compiled.reconstruct(entry)
            assert len(states) == len(block.instructions)
            if states:
                assert np.allclose(
                    states[-1], compiled.transfer.apply(entry), atol=1e-9
                )

    def test_leakage_feedback_rejected(self, allocated_fir):
        leaky = rf16(leakage_feedback=0.05)
        leaky_model = RFThermalModel(leaky.geometry, energy=leaky.energy)
        pm = InstructionPowerModel(
            machine=leaky,
            model=leaky_model,
            placement=ExactPlacement(leaky.geometry.num_registers),
        )
        func = allocate_linear_scan(load("fib").function, leaky).function
        with pytest.raises(DataflowError, match="stepped"):
            compile_block(
                func.entry, leaky_model, pm, leaky.energy.cycle_time
            )


class TestBlockTransferCache:
    def test_cache_hit_returns_same_object(
        self, machine, model, power_model, allocated_fir
    ):
        cache = BlockTransferCache(model, power_model, machine.energy.cycle_time)
        block = allocated_fir.entry
        assert cache.block(block) is cache.block(block)
        assert len(cache) == 1

    def test_stable_key_recompiles_on_length_change(
        self, machine, model, power_model, allocated_fir
    ):
        """The (name, instruction count) key must not serve stale data."""
        cache = BlockTransferCache(model, power_model, machine.energy.cycle_time)
        block = allocated_fir.entry
        first = cache.block(block)
        # Simulate an in-place edit (shorter block under the same name).
        from repro.ir.block import BasicBlock

        shorter = BasicBlock(block.name, block.instructions[:-2])
        second = cache.block(shorter)
        assert second is not first
        assert second.num_instructions == first.num_instructions - 2

    def test_compile_function_covers_all_blocks(
        self, machine, model, power_model, allocated_fir
    ):
        cache = BlockTransferCache(model, power_model, machine.energy.cycle_time)
        compiled = cache.compile_function(allocated_fir)
        assert set(compiled) == set(allocated_fir.blocks)

    def test_analysis_reuses_supplied_cache(
        self, machine, model, power_model, allocated_fir
    ):
        """A matching transfer_cache is shared across runs: no recompiles."""
        cache = BlockTransferCache(model, power_model, machine.energy.cycle_time)
        analysis = ThermalDataflowAnalysis(
            machine,
            model=model,
            power_model=power_model,
            transfer_cache=cache,
            config=TDFAConfig(delta=0.05),
        )
        analysis.run(allocated_fir)
        populated = len(cache)
        assert populated == len(allocated_fir.blocks)
        compiles_after_first = cache.stats.block_compiles
        before = {name: cache.block(block)
                  for name, block in allocated_fir.blocks.items()}
        analysis.run(allocated_fir)
        assert len(cache) == populated
        assert cache.stats.block_compiles == compiles_after_first
        for name, block in allocated_fir.blocks.items():
            assert cache.block(block) is before[name]

    def test_mismatched_cache_ignored(self, machine, model, power_model,
                                      allocated_fir):
        """A cache built for a different dt must not serve stale transfers."""
        stale = BlockTransferCache(
            model, power_model, machine.energy.cycle_time * 2
        )
        analysis = ThermalDataflowAnalysis(
            machine,
            model=model,
            power_model=power_model,
            transfer_cache=stale,
            config=TDFAConfig(delta=0.05),
        )
        result = analysis.run(allocated_fir)
        assert result.converged
        assert len(stale) == 0  # never consulted


class TestEngineSelection:
    def test_auto_resolves_compiled_for_linear(self, machine, allocated_fir):
        analysis = ThermalDataflowAnalysis(machine)
        assert analysis.resolve_engine() == "compiled"
        result = analysis.run(allocated_fir)
        assert result.engine == "compiled"

    def test_auto_resolves_stepped_with_feedback(self):
        leaky = rf16(leakage_feedback=0.05)
        func = allocate_linear_scan(load("fib").function, leaky).function
        analysis = ThermalDataflowAnalysis(leaky)
        assert analysis.resolve_engine() == "stepped"
        assert analysis.run(func).engine == "stepped"

    def test_forced_compiled_with_feedback_rejected(self):
        leaky = rf16(leakage_feedback=0.05)
        analysis = ThermalDataflowAnalysis(
            leaky, config=TDFAConfig(engine="compiled")
        )
        with pytest.raises(DataflowError, match="leakage"):
            analysis.resolve_engine()

    def test_invalid_engine_rejected(self):
        with pytest.raises(DataflowError, match="engine"):
            TDFAConfig(engine="warp")


class TestSweepStrategies:
    """The batched stacked sweep vs. the blockwise Gauss–Seidel loop."""

    DELTA = 0.005

    @pytest.mark.parametrize("merge", ["freq", "mean"])
    @pytest.mark.parametrize("kernel", ["fir", "crc32", "sort", "matmul"])
    def test_batched_matches_blockwise_exactly_in_structure(
        self, machine, model, kernel, merge
    ):
        """Same Gauss–Seidel composition: identical iteration counts."""
        func = allocate_linear_scan(load(kernel).function, machine).function
        results = {}
        for sweep in ("batched", "blockwise"):
            analysis = ThermalDataflowAnalysis(
                machine,
                model=model,
                config=TDFAConfig(delta=self.DELTA, merge=merge, sweep=sweep),
            )
            results[sweep] = analysis.run(func)
        batched, blockwise = results["batched"], results["blockwise"]
        assert batched.sweep == "batched"
        assert blockwise.sweep == "blockwise"
        assert batched.converged and blockwise.converged
        assert batched.iterations == blockwise.iterations
        worst = max(
            batched.after[key].max_abs_diff(blockwise.after[key])
            for key in blockwise.after
        )
        assert worst <= 2 * self.DELTA

    def test_batched_from_arbitrary_entry_state(self, machine, model):
        func = allocate_linear_scan(load("iir").function, machine).function
        rng = np.random.default_rng(7)
        entry = ThermalState(
            model.grid,
            model.params.ambient + rng.uniform(0, 12, model.grid.num_nodes),
        )
        results = [
            ThermalDataflowAnalysis(
                machine, model=model,
                config=TDFAConfig(delta=self.DELTA, sweep=sweep),
            ).run(func, entry_state=entry)
            for sweep in ("batched", "blockwise")
        ]
        assert results[0].exit_state().max_abs_diff(
            results[1].exit_state()
        ) <= 2 * self.DELTA

    def test_auto_resolves_batched_for_affine_merges(self, machine,
                                                     allocated_fir):
        analysis = ThermalDataflowAnalysis(machine)
        assert analysis.resolve_sweep() == "batched"
        assert analysis.run(allocated_fir).sweep == "batched"

    def test_auto_resolves_blockwise_for_max_merge(self, machine,
                                                   allocated_fir):
        analysis = ThermalDataflowAnalysis(
            machine, config=TDFAConfig(merge="max")
        )
        assert analysis.resolve_sweep() == "blockwise"
        assert analysis.run(allocated_fir).sweep == "blockwise"

    def test_batched_with_max_merge_rejected(self):
        with pytest.raises(DataflowError, match="affine merge"):
            TDFAConfig(merge="max", sweep="batched")

    def test_invalid_sweep_rejected(self):
        with pytest.raises(DataflowError, match="sweep"):
            TDFAConfig(sweep="warp")

    def test_stepped_engine_reports_no_sweep(self, machine, allocated_fir):
        result = ThermalDataflowAnalysis(
            machine, config=TDFAConfig(engine="stepped")
        ).run(allocated_fir)
        assert result.sweep == ""


class TestEngineEquivalence:
    """Acceptance: compiled and stepped agree within 2·δ on every kernel."""

    DELTA = 0.01

    @pytest.mark.parametrize("merge", ["freq", "mean"])
    @pytest.mark.parametrize(
        "kernel", ["fib", "fir", "crc32", "matmul", "sort", "histogram"]
    )
    def test_engines_agree_within_two_delta(self, machine, kernel, merge):
        func = allocate_linear_scan(load(kernel).function, machine).function
        model = RFThermalModel(machine.geometry, energy=machine.energy)
        results = {}
        for engine in ("compiled", "stepped"):
            analysis = ThermalDataflowAnalysis(
                machine,
                model=model,
                config=TDFAConfig(delta=self.DELTA, merge=merge, engine=engine),
            )
            results[engine] = analysis.run(func)
        compiled, stepped = results["compiled"], results["stepped"]
        assert compiled.converged and stepped.converged
        assert set(compiled.after) == set(stepped.after)
        worst = max(
            compiled.after[key].max_abs_diff(stepped.after[key])
            for key in stepped.after
        )
        assert worst <= 2 * self.DELTA
        assert (
            compiled.exit_state().max_abs_diff(stepped.exit_state())
            <= 2 * self.DELTA
        )

    def test_batched_agrees_with_stepped_on_every_suite_kernel(self, machine):
        """Acceptance: the batched sweep within 2·δ of stepped, suite-wide."""
        from repro.thermal import RFThermalModel
        from repro.workloads import full_suite

        delta = 0.02
        model = RFThermalModel(machine.geometry, energy=machine.energy)
        for wl in full_suite():
            func = allocate_linear_scan(wl.function, machine).function
            batched = ThermalDataflowAnalysis(
                machine, model=model,
                config=TDFAConfig(delta=delta, sweep="batched"),
            ).run(func)
            stepped = ThermalDataflowAnalysis(
                machine, model=model,
                config=TDFAConfig(delta=delta, engine="stepped"),
            ).run(func)
            assert batched.converged and stepped.converged, wl.name
            worst = max(
                batched.after[key].max_abs_diff(stepped.after[key])
                for key in stepped.after
            )
            assert worst <= 2 * delta, wl.name

    def test_engines_agree_on_max_merge(self, machine):
        """The block transfer is merge-independent, so max joins work too."""
        func = allocate_linear_scan(load("crc32").function, machine).function
        compiled = ThermalDataflowAnalysis(
            machine, config=TDFAConfig(delta=0.01, merge="max", engine="compiled")
        ).run(func)
        stepped = ThermalDataflowAnalysis(
            machine, config=TDFAConfig(delta=0.01, merge="max", engine="stepped")
        ).run(func)
        worst = max(
            compiled.after[key].max_abs_diff(stepped.after[key])
            for key in stepped.after
        )
        assert worst <= 2 * 0.01

    def test_engines_agree_from_arbitrary_entry_state(self, machine):
        func = allocate_linear_scan(load("iir").function, machine).function
        model = RFThermalModel(machine.geometry, energy=machine.energy)
        rng = np.random.default_rng(11)
        entry = ThermalState(
            model.grid,
            model.params.ambient + rng.uniform(0, 15, model.grid.num_nodes),
        )
        results = [
            ThermalDataflowAnalysis(
                machine, model=model,
                config=TDFAConfig(delta=0.005, engine=engine),
            ).run(func, entry_state=entry)
            for engine in ("compiled", "stepped")
        ]
        assert results[0].exit_state().max_abs_diff(
            results[1].exit_state()
        ) <= 0.01
