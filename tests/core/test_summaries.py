"""Affine function summaries: extraction exactness and composition."""

import numpy as np
import pytest

from repro.arch import rf16, rf64
from repro.core import (
    TDFAConfig,
    ThermalDataflowAnalysis,
    compose_pipeline,
    summarize_function,
)
from repro.errors import DataflowError
from repro.regalloc import allocate_linear_scan
from repro.thermal import RFThermalModel, ThermalState
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    # 16-entry RF keeps the (nodes+1) probe runs fast.
    return rf16()


@pytest.fixture(scope="module")
def model(machine):
    return RFThermalModel(machine.geometry, energy=machine.energy)


@pytest.fixture(scope="module")
def allocated(machine):
    out = {}
    for name in ("fib", "crc32"):
        wl = load(name)
        out[name] = allocate_linear_scan(wl.function, machine).function
    return out


@pytest.fixture(scope="module")
def summaries(machine, model, allocated):
    return {
        name: summarize_function(func, machine, model=model, delta=0.002)
        for name, func in allocated.items()
    }


def run_tdfa(machine, model, function, entry_state=None, delta=0.002):
    analysis = ThermalDataflowAnalysis(
        machine=machine, model=model, config=TDFAConfig(delta=delta)
    )
    return analysis.run(function, entry_state=entry_state)


class TestExtraction:
    def test_apply_matches_direct_analysis_at_ambient(
        self, machine, model, allocated, summaries
    ):
        direct = run_tdfa(machine, model, allocated["fib"]).exit_state()
        via_summary = summaries["fib"].apply(model.ambient_state())
        assert direct.max_abs_diff(via_summary) < 0.02

    def test_apply_matches_on_arbitrary_entry_state(
        self, machine, model, allocated, summaries
    ):
        """The affine map must predict exits from *any* entry state."""
        rng = np.random.default_rng(7)
        entry = ThermalState(
            model.grid,
            model.params.ambient + rng.uniform(0, 10, model.grid.num_nodes),
        )
        direct = run_tdfa(
            machine, model, allocated["fib"], entry_state=entry
        ).exit_state()
        predicted = summaries["fib"].apply(entry)
        assert direct.max_abs_diff(predicted) < 0.05

    def test_contraction_strictly_below_one(self, summaries):
        for summary in summaries.values():
            assert 0.0 < summary.contraction_factor() < 1.0

    def test_longer_function_contracts_more(self, summaries):
        # crc32 runs far more weighted instructions than fib: more of the
        # entry state is forgotten.
        assert (
            summaries["crc32"].contraction_factor()
            < summaries["fib"].contraction_factor()
        )

    def test_ambient_peak_recorded(self, summaries):
        for summary in summaries.values():
            assert summary.ambient_peak > 318.15


class TestComposition:
    def test_compose_matches_sequential_analyses(
        self, machine, model, allocated, summaries
    ):
        """summary(g) ∘ summary(f) == analyze g starting from f's exit."""
        f_exit = run_tdfa(machine, model, allocated["fib"]).exit_state()
        direct = run_tdfa(
            machine, model, allocated["crc32"], entry_state=f_exit
        ).exit_state()
        composed = summaries["crc32"].compose(summaries["fib"])
        predicted = composed.apply(model.ambient_state())
        assert direct.max_abs_diff(predicted) < 0.05

    def test_pipeline_helper_order(self, model, summaries):
        ab = compose_pipeline([summaries["fib"], summaries["crc32"]])
        manual = summaries["crc32"].compose(summaries["fib"])
        assert np.allclose(ab.matrix, manual.matrix)
        assert np.allclose(ab.offset, manual.offset)
        assert ab.function_name == "fib;crc32"

    def test_empty_pipeline_rejected(self):
        with pytest.raises(DataflowError):
            compose_pipeline([])

    def test_fixed_point_is_steady_schedule(self, model, summaries):
        """Applying the summary to its fixed point returns the fixed point."""
        summary = summaries["fib"]
        steady = summary.fixed_point()
        assert steady is not None
        state = ThermalState(model.grid, steady)
        again = summary.apply(state)
        assert again.max_abs_diff(state) < 1e-6

    def test_repeated_application_converges_to_fixed_point(
        self, model, summaries
    ):
        summary = summaries["crc32"]
        steady = ThermalState(model.grid, summary.fixed_point())
        state = model.ambient_state()
        for _ in range(60):
            state = summary.apply(state)
        assert state.max_abs_diff(steady) < 0.01


@pytest.fixture(scope="module")
def tight_summaries(machine, model, allocated):
    """Exact and probe extractions at a δ tight enough to compare them."""
    out = {}
    for name in ("fib", "crc32"):
        out[name] = {
            method: summarize_function(
                allocated[name], machine, model=model, delta=1e-11, method=method
            )
            for method in ("exact", "probe")
        }
    return out


class TestExactExtraction:
    """The closed-form extraction against the probe-based cross-check."""

    @pytest.mark.parametrize("kernel", ["fib", "crc32"])
    def test_exact_equals_probe_summaries(self, tight_summaries, kernel):
        """Property: both extraction methods recover the same affine map."""
        exact = tight_summaries[kernel]["exact"]
        probe = tight_summaries[kernel]["probe"]
        assert np.abs(exact.matrix - probe.matrix).max() < 1e-6
        assert np.abs(exact.offset - probe.offset).max() < 1e-6

    def test_exact_equals_probe_under_mean_merge(self, machine, model, allocated):
        exact = summarize_function(
            allocated["fib"], machine, model=model, delta=1e-11,
            merge="mean", method="exact",
        )
        probe = summarize_function(
            allocated["fib"], machine, model=model, delta=1e-11,
            merge="mean", method="probe",
        )
        assert np.abs(exact.matrix - probe.matrix).max() < 1e-6
        assert np.abs(exact.offset - probe.offset).max() < 1e-6

    def test_exact_runs_a_single_analysis(
        self, machine, model, allocated, monkeypatch
    ):
        """Acceptance: no more (nodes + 1) runs in the linear case."""
        from repro.core.tdfa import ThermalDataflowAnalysis as TDFA

        calls: list[str] = []
        original = TDFA.run

        def counting_run(self, function, entry_state=None):
            calls.append(function.name)
            return original(self, function, entry_state)

        monkeypatch.setattr(TDFA, "run", counting_run)
        summarize_function(allocated["fib"], machine, model=model, delta=0.002)
        assert len(calls) == 1

    def test_compose_agrees_between_methods(self, tight_summaries):
        via_exact = tight_summaries["crc32"]["exact"].compose(
            tight_summaries["fib"]["exact"]
        )
        via_probe = tight_summaries["crc32"]["probe"].compose(
            tight_summaries["fib"]["probe"]
        )
        assert np.abs(via_exact.matrix - via_probe.matrix).max() < 1e-5
        assert np.abs(via_exact.offset - via_probe.offset).max() < 1e-5

    def test_fixed_point_agrees_between_methods(self, tight_summaries):
        exact_fp = tight_summaries["crc32"]["exact"].fixed_point()
        probe_fp = tight_summaries["crc32"]["probe"].fixed_point()
        assert exact_fp is not None and probe_fp is not None
        assert np.abs(exact_fp - probe_fp).max() < 1e-5

    def test_exact_fixed_point_is_invariant(self, model, tight_summaries):
        summary = tight_summaries["fib"]["exact"]
        steady = ThermalState(model.grid, summary.fixed_point())
        assert summary.apply(steady).max_abs_diff(steady) < 1e-9

    def test_invalid_method_rejected(self, machine, allocated):
        with pytest.raises(DataflowError, match="method"):
            summarize_function(allocated["fib"], machine, method="bisect")


class TestValidation:
    def test_max_merge_rejected(self, machine, allocated):
        with pytest.raises(DataflowError, match="affine merge"):
            summarize_function(allocated["fib"], machine, merge="max")

    def test_leakage_feedback_rejected(self, allocated):
        leaky = rf16(leakage_feedback=0.05)
        func = allocate_linear_scan(load("fib").function, leaky).function
        with pytest.raises(DataflowError, match="linear thermal model"):
            summarize_function(func, leaky)

    def test_grid_mismatch_rejected(self, machine, summaries):
        big_model = RFThermalModel(rf64().geometry)
        with pytest.raises(DataflowError, match="grid"):
            summaries["fib"].apply(big_model.ambient_state())
