"""Cross-function pipeline analysis: strategy agreement, caching, reports."""

import numpy as np
import pytest

from repro.arch import rf16
from repro.core import AnalysisContext, run_pipeline
from repro.core.pipeline_runner import (
    PIPELINE_STRATEGIES,
    PipelineReport,
    analyze_pipeline,
)
from repro.errors import DataflowError
from repro.regalloc import allocate_linear_scan
from repro.workloads import load, random_pipeline, small_suite

DELTA = 1e-5


@pytest.fixture(scope="module")
def machine():
    return rf16()


@pytest.fixture(scope="module")
def context(machine):
    return AnalysisContext(machine)


@pytest.fixture(scope="module")
def suite_functions(machine):
    """Small-suite kernels with repeats: 7 stages, 5 distinct."""
    allocated = {
        workload.name: allocate_linear_scan(
            workload.function, machine
        ).function
        for workload in small_suite()
    }
    names = [workload.name for workload in small_suite()]
    return [allocated[name] for name in names + names[:2]]


@pytest.fixture(scope="module")
def analyses(context, suite_functions):
    return {
        strategy: context.analyze_pipeline(
            suite_functions, strategy=strategy, delta=DELTA
        )
        for strategy in PIPELINE_STRATEGIES
    }


class TestStrategyAgreement:
    def test_all_strategies_converge(self, analyses):
        for strategy, analysis in analyses.items():
            assert analysis.converged, strategy
            assert analysis.strategy == strategy

    @pytest.mark.parametrize("other", ["composed", "stacked"])
    def test_exit_states_agree_within_two_delta(self, analyses, other):
        reference = analyses["sequential"]
        candidate = analyses[other]
        for k in range(reference.num_stages):
            diff = np.abs(
                candidate.exit_states[k].temperatures
                - reference.exit_states[k].temperatures
            ).max()
            assert diff <= 2 * DELTA, (other, k, diff)

    def test_entry_states_chain(self, analyses):
        """Entry of stage k+1 is exactly the exit of stage k."""
        for analysis in analyses.values():
            for k in range(1, analysis.num_stages):
                np.testing.assert_array_equal(
                    analysis.entry_states[k].temperatures,
                    analysis.exit_states[k - 1].temperatures,
                )

    def test_stage_results_materialized(self, analyses):
        """Sequential and stacked carry full per-instruction states."""
        for strategy in ("sequential", "stacked"):
            results = analyses[strategy].stage_results
            assert results is not None
            for function, result in zip(
                analyses[strategy].functions, results
            ):
                assert len(result.after) == function.instruction_count()
        assert analyses["composed"].stage_results is None

    def test_stacked_interior_states_agree(self, analyses):
        """Per-instruction states agree between stacked and sequential."""
        for seq, stk in zip(
            analyses["sequential"].stage_results,
            analyses["stacked"].stage_results,
        ):
            worst = max(
                stk.after[key].max_abs_diff(seq.after[key])
                for key in seq.after
            )
            assert worst <= 2 * DELTA

    def test_composed_summary_matches_chain(self, analyses, context):
        """The composed whole-pipeline summary maps entry to final exit."""
        summary = analyses["composed"].summary
        assert summary is not None
        entry = context.model.ambient_state()
        np.testing.assert_allclose(
            summary.apply(entry).temperatures,
            analyses["composed"].exit_states[-1].temperatures,
            atol=1e-9,
        )


class TestEdgeCases:
    def test_empty_pipeline_rejected(self, context):
        with pytest.raises(DataflowError, match="empty pipeline"):
            context.analyze_pipeline([], strategy="stacked")
        with pytest.raises(DataflowError, match="empty pipeline"):
            run_pipeline([], context=context)

    def test_unknown_strategy_rejected(self, context, suite_functions):
        with pytest.raises(DataflowError, match="strategy"):
            context.analyze_pipeline(suite_functions[:1], strategy="warp")

    @pytest.mark.parametrize("strategy", PIPELINE_STRATEGIES)
    def test_singleton_pipeline_matches_single_analysis(
        self, context, suite_functions, strategy
    ):
        function = suite_functions[0]
        analysis = context.analyze_pipeline(
            [function], strategy=strategy, delta=DELTA
        )
        single = context.analyze(function, delta=DELTA, stop="bound")
        diff = np.abs(
            analysis.exit_states[0].temperatures
            - single.exit_state().temperatures
        ).max()
        assert diff <= 2 * DELTA

    def test_max_merge_requires_sequential(self, context, suite_functions):
        for strategy in ("stacked", "composed"):
            with pytest.raises(DataflowError, match="affine merge"):
                context.analyze_pipeline(
                    suite_functions[:2], strategy=strategy, merge="max"
                )
        analysis = context.analyze_pipeline(
            suite_functions[:2], strategy="sequential", merge="max"
        )
        assert analysis.converged

    def test_include_leakage_override_honoured_by_every_strategy(
        self, machine, suite_functions
    ):
        """Regression: composed/stacked used to ignore include_leakage.

        The summary/solution caches hardcoded the leakage-on transfer
        cache, so composed pipelines disagreed with sequential by ~30mK
        under include_leakage=False (and alternating settings could be
        served stale solves).
        """
        ctx = AnalysisContext(machine)
        functions = suite_functions[:2]
        results = {
            strategy: ctx.analyze_pipeline(
                functions, strategy=strategy, delta=DELTA,
                include_leakage=False,
            )
            for strategy in PIPELINE_STRATEGIES
        }
        for strategy in ("composed", "stacked"):
            diff = np.abs(
                results[strategy].exit_states[-1].temperatures
                - results["sequential"].exit_states[-1].temperatures
            ).max()
            assert diff <= 2 * DELTA, (strategy, diff)
        # Leakage on vs off must actually differ (the override reaches
        # the power model) and both settings get their own cache slot.
        with_leakage = ctx.analyze_pipeline(
            functions, strategy="composed", delta=DELTA,
        )
        assert np.abs(
            with_leakage.exit_states[-1].temperatures
            - results["composed"].exit_states[-1].temperatures
        ).max() > 10 * DELTA
        assert ctx.stats["summary_compiles"] == 4  # 2 kernels × 2 settings

    def test_stepped_engine_requires_sequential(
        self, context, suite_functions
    ):
        with pytest.raises(DataflowError, match="stepped"):
            context.analyze_pipeline(
                suite_functions[:2], strategy="stacked", engine="stepped"
            )

    def test_policies_length_mismatch(self, context):
        with pytest.raises(DataflowError, match="one policy per stage"):
            run_pipeline(
                ["fib", "crc32"], context=context,
                policies=["first-free"],
            )

    def test_unknown_machine(self):
        with pytest.raises(DataflowError, match="unknown machine"):
            run_pipeline(["fib"], machine_name="rf9")


class TestCaching:
    def test_pipeline_sweep_cached_across_runs(self, machine):
        ctx = AnalysisContext(machine)
        function = allocate_linear_scan(load("fib").function, machine).function
        functions = [function, function, function]
        ctx.analyze_pipeline(functions, strategy="stacked", delta=DELTA)
        first = ctx.stats
        assert first["pipeline_compiles"] == 1
        assert first["solve_compiles"] == 1  # one distinct kernel
        ctx.analyze_pipeline(functions, strategy="stacked", delta=DELTA)
        second = ctx.stats
        assert second["pipeline_compiles"] == 1
        assert second["pipeline_hits"] == 1
        assert second["solve_compiles"] == 1
        assert second["solve_hits"] >= 2

    def test_summary_cached_per_distinct_kernel(self, machine):
        ctx = AnalysisContext(machine)
        function = allocate_linear_scan(load("fib").function, machine).function
        other = allocate_linear_scan(load("crc32").function, machine).function
        ctx.analyze_pipeline(
            [function, other, function, function], strategy="composed",
        )
        stats = ctx.stats
        assert stats["summary_compiles"] == 2
        assert stats["summary_hits"] == 2

    def test_invalidate_drops_pipeline_artifacts(self, machine):
        ctx = AnalysisContext(machine)
        function = allocate_linear_scan(load("fib").function, machine).function
        ctx.analyze_pipeline([function, function], strategy="stacked")
        ctx.invalidate(function)
        ctx.analyze_pipeline([function, function], strategy="stacked")
        assert ctx.stats["pipeline_compiles"] == 2

    def test_stacked_factored_apply_matches_dense(self, machine):
        """The factored sweep and its dense materialization are one map."""
        ctx = AnalysisContext(machine)
        functions = [
            allocate_linear_scan(load(name).function, machine).function
            for name in ("fib", "crc32")
        ]
        ctx.analyze_pipeline(functions, strategy="stacked", delta=DELTA)
        cache = ctx.transfer_cache()
        (key,) = [k for k in cache._pipelines]
        pipeline = cache._pipelines[key]
        rng = np.random.default_rng(7)
        stacked = 300.0 + rng.random(pipeline.stacked_size)
        t_entry = 300.0 + rng.random(pipeline.num_nodes)
        ins, outs = pipeline.apply(stacked, t_entry)
        p, e, g, p_in, e_in, g_in = pipeline.dense()
        np.testing.assert_allclose(outs, p @ stacked + e @ t_entry + g,
                                   atol=1e-8)
        np.testing.assert_allclose(ins, p_in @ stacked + e_in @ t_entry + g_in,
                                   atol=1e-8)


class TestReports:
    def test_run_pipeline_report_round_trip(self, context):
        report = run_pipeline(
            ["fib", "crc32", "fib"], context=context, delta=0.005
        )
        assert report.converged
        data = report.to_dict()
        assert data["schema"] == "repro.pipeline/1"
        assert [s["name"] for s in data["stages"]] == ["fib", "crc32", "fib"]
        assert data["totals"]["stages"] == 3
        assert data["totals"]["distinct_kernels"] == 2
        revived = PipelineReport.from_dict(data)
        assert revived.to_dict() == data

    def test_report_json_file(self, context, tmp_path):
        report = run_pipeline(["fib"], context=context, delta=0.01)
        path = tmp_path / "BENCH_pipeline.json"
        report.write_json(path)
        import json

        data = json.loads(path.read_text())
        assert data["schema"] == "repro.pipeline/1"
        assert data["converged"] is True

    def test_composed_report_has_no_interior_peaks(self, context):
        report = run_pipeline(
            ["fib", "fib"], context=context, strategy="composed"
        )
        assert all(item.peak_kelvin is None for item in report.stages)

    def test_exit_peaks_monotone_chain(self, context):
        """Stage k's reported entry peak equals stage k−1's exit peak."""
        report = run_pipeline(
            ["fib", "crc32", "fib"], context=context, strategy="stacked"
        )
        for prev, item in zip(report.stages, report.stages[1:]):
            assert item.entry_peak_kelvin == pytest.approx(
                prev.exit_peak_kelvin
            )

    def test_workload_objects_and_names_mix(self, context):
        stages = ["fib", load("crc32")]
        report = run_pipeline(stages, context=context)
        assert [item.name for item in report.stages] == ["fib", "crc32"]

    def test_random_pipeline_stages(self, machine):
        stages = random_pipeline(seed=3, length=6)
        report = run_pipeline(
            stages, context=AnalysisContext(machine), delta=0.01
        )
        assert report.converged
        assert len(report.stages) == 6
