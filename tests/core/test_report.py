"""Report rendering smoke tests."""

import pytest

from repro.arch import rf64
from repro.core import (
    ExactPlacement,
    analyze,
    convergence_table,
    evaluate_rules,
    format_result,
    rank_critical_variables,
)
from repro.regalloc import allocate_linear_scan
from repro.workloads import load


@pytest.fixture(scope="module")
def result_and_placement():
    machine = rf64()
    wl = load("fir")
    allocated = allocate_linear_scan(wl.function, machine).function
    result = analyze(allocated, machine, delta=0.05)
    return machine, result, ExactPlacement(64)


def test_format_result_mentions_convergence(result_and_placement):
    _m, result, _p = result_and_placement
    text = format_result(result)
    assert "converged" in text
    assert "hottest instructions" in text
    assert "peak thermal map" in text


def test_format_result_with_criticals_and_plan(result_and_placement):
    machine, result, placement = result_and_placement
    criticals = rank_critical_variables(result, placement, top_k=3)
    plan = evaluate_rules(result, placement, machine)
    text = format_result(result, criticals=criticals, plan=plan)
    assert "critical variables" in text
    assert "thermal plan" in text


def test_format_result_without_map(result_and_placement):
    _m, result, _p = result_and_placement
    assert "peak thermal map" not in format_result(result, show_map=False)


def test_convergence_table_columns(result_and_placement):
    _m, result, _p = result_and_placement
    table = convergence_table([(0.05, result), (0.01, result)])
    lines = table.splitlines()
    assert "delta" in lines[0]
    assert len(lines) == 3
