"""The suite runner: one shared context from kernels to JSON report."""

import json

import pytest

from repro.arch import rf64
from repro.core import AnalysisContext, SuiteReport, run_suite
from repro.core.suite_runner import SCHEMA, _build_workload, _workload_specs
from repro.workloads import small_suite, workload_names


class TestWorkloadSpecs:
    def test_default_covers_full_suite(self):
        specs = _workload_specs(None, quick=False, include_pressure=False,
                                random_count=0)
        assert [arg for _kind, arg in specs] == workload_names()

    def test_quick_covers_small_suite(self):
        specs = _workload_specs(None, quick=True, include_pressure=False,
                                random_count=0)
        names = [_build_workload(s).name for s in specs]
        assert names == [wl.name for wl in small_suite()]

    def test_generators_included_on_request(self):
        specs = _workload_specs(["fib"], quick=False, include_pressure=True,
                                random_count=2)
        kinds = [kind for kind, _arg in specs]
        assert kinds.count("pressure") >= 5
        assert kinds.count("random") == 2
        for spec in specs:
            assert _build_workload(spec).function is not None

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            run_suite(names=["fib"], machine_name="rf1024")

    def test_context_with_multiprocessing_rejected(self):
        with pytest.raises(ValueError, match="process boundaries"):
            run_suite(
                names=["fib"], context=AnalysisContext(rf64()), processes=2
            )


class TestSingleProcessRun:
    @pytest.fixture(scope="class")
    def report(self):
        return run_suite(names=["fib", "crc32", "fir"], delta=0.02)

    def test_all_items_converge_under_compiled_engine(self, report):
        assert report.all_converged
        for item in report.items:
            assert item.engine == "compiled"
            assert item.sweep == "batched"
            assert item.iterations >= 2
            assert item.peak_delta_kelvin > 0

    def test_context_stats_show_one_shared_context(self, report):
        stats = report.context_stats
        assert stats["analyses"] == 3
        assert stats["transfer_caches"] == 1
        assert stats["block_compiles"] > 0

    def test_totals(self, report):
        totals = report.totals()
        assert totals["kernels"] == 3
        assert totals["converged"] == 3
        assert totals["instructions"] == sum(
            i.instructions for i in report.items
        )

    def test_supplied_context_is_used(self):
        ctx = AnalysisContext(rf64())
        report = run_suite(names=["fib"], context=ctx, delta=0.02)
        assert ctx.stats["analyses"] == 1
        assert report.context_stats["analyses"] == 1

    def test_context_persists_across_suite_runs(self):
        """A long-lived context keeps one model/cache across runs.

        Workload factories build fresh IR per run, so block transfers
        recompile (identity keying — nothing can alias), but the model,
        its factorizations and the power model are shared throughout.
        """
        ctx = AnalysisContext(rf64())
        run_suite(names=["fib", "crc32"], context=ctx, delta=0.02)
        run_suite(names=["fib", "crc32"], context=ctx, delta=0.02)
        stats = ctx.stats
        assert stats["analyses"] == 4
        assert stats["power_models"] == 1
        assert stats["transfer_caches"] == 1


class TestReport:
    def test_json_roundtrip(self, tmp_path):
        report = run_suite(names=["fib"], delta=0.05)
        path = tmp_path / "BENCH_suite.json"
        report.write_json(path)
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA
        assert data["machine"] == "rf64"
        assert data["totals"]["kernels"] == 1
        (item,) = data["results"]
        assert item["name"] == "fib"
        assert item["converged"] is True
        assert item["engine"] == "compiled"
        assert isinstance(item["wall_time_seconds"], float)

    def test_report_is_plain_data(self):
        report = run_suite(names=["fib"], delta=0.05)
        assert isinstance(report, SuiteReport)
        json.dumps(report.to_dict())  # fully serializable

    def test_dict_round_trip_is_lossless(self):
        report = run_suite(names=["fib", "crc32"], delta=0.05)
        assert SuiteReport.from_dict(report.to_dict()) == report

    def test_round_trip_through_json_text(self):
        report = run_suite(names=["fib"], delta=0.05, chip=True)
        revived = SuiteReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert revived == report
        assert revived.items[0].name == "fib"
        assert revived.model == "chip"

    def test_chip_model_reported(self):
        report = run_suite(names=["fib"], delta=0.05, chip=True)
        assert report.model == "chip"
        assert report.all_converged


class TestMultiprocessing:
    def test_two_workers_cover_the_suite(self):
        report = run_suite(
            names=["fib", "crc32", "fir", "iir"], delta=0.05, processes=2
        )
        assert report.processes == 2
        assert {i.name for i in report.items} == {"fib", "crc32", "fir", "iir"}
        assert report.all_converged
        # Regression: worker context stats used to be silently dropped
        # (context_stats == {}), leaving multi-process reports with no
        # amortization totals.  Workers now ship their counters home
        # and the parent sums them.
        assert report.context_stats["analyses"] == 4
        assert report.context_stats["block_compiles"] > 0
        assert (
            report.context_stats["block_compiles"]
            + report.context_stats["block_hits"]
        ) > 0
