"""The §4 rule engine: firing conditions and plan ordering."""

import pytest

from repro.arch import rf16, rf64
from repro.core import (
    AllocationPlacement,
    RuleConfig,
    analyze,
    evaluate_rules,
)
from repro.regalloc import allocate_linear_scan
from repro.workloads import load, pressure_program


@pytest.fixture(scope="module")
def machine():
    return rf64()


def plan_for(workload, machine, config=None, delta=0.05):
    allocation = allocate_linear_scan(workload.function, machine)
    placement = AllocationPlacement(allocation, machine.geometry.num_registers)
    result = analyze(workload.function, machine, delta=delta, placement=placement)
    return evaluate_rules(result, placement, machine, config)


class TestRuleFiring:
    def test_hotspot_kernel_triggers_spill_or_reassign(self, machine):
        # fib concentrates heat on two registers; with a threshold below
        # its predicted gradient the spread-or-spill rule must fire.
        config = RuleConfig(gradient_threshold=0.2)
        plan = plan_for(load("fib"), machine, config=config)
        names = plan.pass_names()
        assert "spill_critical" in names or "reassign" in names

    def test_quiet_program_triggers_little(self, machine, straightline):
        from repro.workloads.kernels import Workload

        wl = Workload(name="s", description="", function=straightline)
        plan = plan_for(wl, machine, config=RuleConfig(gradient_threshold=5.0))
        assert "spill_critical" not in plan.pass_names()

    def test_chessboard_viable_at_low_pressure(self, machine):
        plan = plan_for(load("fib"), machine)
        assert "chessboard_assignment" in plan.pass_names()

    def test_chessboard_not_viable_at_high_pressure(self):
        machine = rf16()  # 16 registers; pressure > 8 kills the chessboard
        plan = plan_for(pressure_program(12, iterations=30), machine)
        assert "chessboard_assignment" not in plan.pass_names()

    def test_nop_rule_gated_by_threshold(self, machine):
        low_bar = RuleConfig(peak_threshold=0.05)
        plan = plan_for(load("fir"), machine, config=low_bar)
        assert "insert_nops" in plan.pass_names()
        high_bar = RuleConfig(peak_threshold=500.0)
        plan = plan_for(load("fir"), machine, config=high_bar)
        assert "insert_nops" not in plan.pass_names()

    def test_schedule_rule_on_dependent_code(self, machine):
        plan = plan_for(load("iir"), machine)
        assert "thermal_schedule" in plan.pass_names()


class TestPlanStructure:
    def test_nops_always_last(self, machine):
        config = RuleConfig(peak_threshold=0.05)  # force the NOP rule on
        plan = plan_for(load("fir"), machine, config=config)
        names = plan.pass_names()
        assert names[-1] == "insert_nops"

    def test_ordered_by_priority(self, machine):
        plan = plan_for(load("iir"), machine)
        priorities = [r.priority for r in plan.ordered()]
        assert priorities == sorted(priorities)

    def test_plan_reports_headline_numbers(self, machine):
        plan = plan_for(load("fir"), machine)
        assert plan.peak > 318.0
        assert plan.pressure > 0
        assert plan.function_name == "fir"

    def test_str_rendering(self, machine):
        plan = plan_for(load("fir"), machine)
        text = str(plan)
        assert "thermal plan" in text
        for rec in plan.ordered():
            assert rec.pass_name in text


class TestRecommendationContent:
    def test_spill_targets_are_critical_registers(self, machine):
        plan = plan_for(load("fib"), machine)
        spill = [r for r in plan.ordered() if r.pass_name == "spill_critical"]
        if spill:
            assert len(spill[0].targets) >= 1

    def test_rationales_are_informative(self, machine):
        plan = plan_for(load("iir"), machine)
        for rec in plan.ordered():
            assert rec.rationale
            assert rec.expected_effect
