"""AnalysisContext: shared models, cache reuse, pipeline integration."""

import numpy as np
import pytest

from repro.arch import rf16, rf64
from repro.core import AnalysisContext, TDFAConfig, ThermalDataflowAnalysis
from repro.errors import DataflowError
from repro.opt import ThermalAwareCompiler
from repro.regalloc import allocate_linear_scan
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def allocated_fir(machine):
    return allocate_linear_scan(load("fir").function, machine).function


@pytest.fixture(scope="module")
def allocated_crc(machine):
    return allocate_linear_scan(load("crc32").function, machine).function


class TestSharedComponents:
    def test_power_model_shared_per_placement(self, machine):
        ctx = AnalysisContext(machine)
        assert ctx.power_model() is ctx.power_model()
        assert ctx.power_model() is ctx.power_model(ctx.exact_placement)

    def test_transfer_cache_shared_per_power_model(self, machine):
        ctx = AnalysisContext(machine)
        assert ctx.transfer_cache() is ctx.transfer_cache()
        other = ctx.transfer_cache(include_leakage=False)
        assert other is not ctx.transfer_cache()

    def test_analyses_share_the_model(self, machine):
        ctx = AnalysisContext(machine)
        first = ctx.analysis()
        second = ctx.analysis()
        assert first.model is ctx.model
        assert second.model is ctx.model
        assert first.transfer_cache is second.transfer_cache

    def test_static_profile_cached_per_function(self, machine, allocated_fir):
        ctx = AnalysisContext(machine)
        assert ctx.static_profile(allocated_fir) is ctx.static_profile(
            allocated_fir
        )


class TestCacheReuse:
    def test_second_analysis_hits_the_cache(self, machine, allocated_fir):
        ctx = AnalysisContext(machine)
        ctx.analyze(allocated_fir)
        compiles = ctx.stats["block_compiles"]
        assert compiles == len(allocated_fir.blocks)
        first_hits = ctx.stats["block_hits"]
        ctx.analyze(allocated_fir)
        assert ctx.stats["block_compiles"] == compiles  # nothing recompiled
        assert ctx.stats["block_hits"] > first_hits

    def test_sweep_compiled_once(self, machine, allocated_fir):
        ctx = AnalysisContext(machine)
        ctx.analyze(allocated_fir)
        ctx.analyze(allocated_fir)
        assert ctx.stats["sweep_compiles"] == 1
        assert ctx.stats["sweep_hits"] == 1

    def test_results_identical_across_cached_runs(self, machine, allocated_fir):
        ctx = AnalysisContext(machine)
        first = ctx.analyze(allocated_fir, delta=0.005)
        second = ctx.analyze(allocated_fir, delta=0.005)
        assert first.iterations == second.iterations
        for key in first.after:
            assert np.array_equal(
                first.after[key].temperatures, second.after[key].temperatures
            )

    def test_transformed_function_does_not_alias(self, machine, allocated_fir):
        """A transformed (rebuilt) function must recompile, never reuse."""
        from repro.opt import ReassignPass

        ctx = AnalysisContext(machine)
        baseline = ctx.analyze(allocated_fir)
        compiles = ctx.stats["block_compiles"]
        transformed, _report = ReassignPass(machine=machine).run(allocated_fir)
        result = ctx.analyze(transformed)
        # Same block names and instruction counts, different objects:
        # identity keying forces a fresh compile for every block.
        assert ctx.stats["block_compiles"] == compiles + len(transformed.blocks)
        assert result.converged and baseline.converged

    def test_invalidate_forces_recompile(self, machine, allocated_fir):
        ctx = AnalysisContext(machine)
        ctx.analyze(allocated_fir)
        compiles = ctx.stats["block_compiles"]
        ctx.invalidate(allocated_fir)
        ctx.analyze(allocated_fir)
        assert ctx.stats["block_compiles"] == compiles + len(
            allocated_fir.blocks
        )

    def test_full_reset_drops_caches_but_keeps_counters(
        self, machine, allocated_fir
    ):
        ctx = AnalysisContext(machine)
        ctx.analyze(allocated_fir)
        before = ctx.stats
        assert before["transfer_caches"] == 1
        ctx.invalidate()
        after = ctx.stats
        assert after["transfer_caches"] == 0
        assert after["power_models"] == 0
        assert after["block_compiles"] == before["block_compiles"]
        # The context keeps working after a reset.
        result = ctx.analyze(allocated_fir)
        assert result.converged
        assert ctx.stats["block_compiles"] == 2 * before["block_compiles"]

    def test_distinct_functions_tracked_separately(
        self, machine, allocated_fir, allocated_crc
    ):
        ctx = AnalysisContext(machine)
        ctx.analyze(allocated_fir)
        ctx.analyze(allocated_crc)
        expected = len(allocated_fir.blocks) + len(allocated_crc.blocks)
        assert ctx.stats["block_compiles"] == expected


class TestAnalyzeOverrides:
    def test_overrides_apply_per_call(self, machine, allocated_fir):
        ctx = AnalysisContext(machine, config=TDFAConfig(delta=0.5))
        loose = ctx.analyze(allocated_fir)
        tight = ctx.analyze(allocated_fir, delta=0.001)
        assert tight.iterations > loose.iterations
        assert ctx.config.delta == 0.5  # default untouched

    def test_engine_override(self, machine, allocated_fir):
        ctx = AnalysisContext(machine)
        stepped = ctx.analyze(allocated_fir, engine="stepped")
        assert stepped.engine == "stepped"
        compiled = ctx.analyze(allocated_fir)
        assert compiled.engine == "compiled"

    def test_bad_override_rejected(self, machine, allocated_fir):
        ctx = AnalysisContext(machine)
        with pytest.raises(DataflowError):
            ctx.analyze(allocated_fir, merge="nonsense")


class TestPipelineIntegration:
    def test_pipeline_analyses_share_one_context(self, machine):
        ctx = AnalysisContext(machine)
        compiler = ThermalAwareCompiler(machine, context=ctx)
        result = compiler.compile(load("fir").function)
        assert compiler.context is ctx
        assert compiler.model is ctx.model
        # At least the before and after analyses ran through the context.
        assert ctx.stats["analyses"] >= 2
        assert result.analysis_before is not None
        assert result.analysis_after is not None

    def test_default_pipeline_builds_its_own_context(self, machine):
        compiler = ThermalAwareCompiler(machine)
        compiler.compile(load("fib").function)
        assert compiler.context.stats["analyses"] >= 2

    def test_repeated_compiles_amortize_through_shared_context(self, machine):
        ctx = AnalysisContext(machine)
        compiler = ThermalAwareCompiler(machine, context=ctx)
        compiler.compile(load("fib").function)
        after_first = ctx.stats["block_compiles"]
        compiler.compile(load("fib").function)
        # The second compile() analyzes new function objects (the pass
        # pipeline rebuilds them), so compiles grow — but the context,
        # model and factorizations are shared, and nothing aliases.
        assert ctx.stats["block_compiles"] >= after_first
        assert ctx.stats["analyses"] >= 4

    def test_pipeline_results_unchanged_by_sharing(self, machine):
        fresh = ThermalAwareCompiler(machine).compile(load("fib").function)
        shared = ThermalAwareCompiler(
            machine, context=AnalysisContext(machine)
        ).compile(load("fib").function)
        assert (
            fresh.analysis_after.peak_state().peak
            == pytest.approx(shared.analysis_after.peak_state().peak)
        )


class TestChipContext:
    def test_for_chip_runs_compiled(self, machine):
        from repro.thermal import ChipThermalModel

        ctx = AnalysisContext.for_chip(machine)
        assert isinstance(ctx.model, ChipThermalModel)
        allocated = allocate_linear_scan(load("fib").function, machine).function
        result = ctx.analyze(allocated, delta=0.02)
        assert result.converged
        assert result.engine == "compiled"

    def test_chip_context_with_leakage_feedback_steps(self):
        leaky = rf16(leakage_feedback=0.05)
        ctx = AnalysisContext.for_chip(leaky)
        allocated = allocate_linear_scan(load("fib").function, leaky).function
        result = ctx.analyze(allocated, delta=0.05)
        assert result.engine == "stepped"
