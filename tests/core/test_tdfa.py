"""The thermal data flow analysis (Fig. 2): convergence, states, merges."""

import numpy as np
import pytest

from repro.arch import rf64
from repro.core import TDFAConfig, ThermalDataflowAnalysis, analyze
from repro.errors import ConvergenceError, DataflowError
from repro.regalloc import allocate_linear_scan
from repro.sim import Interpreter
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def allocated_fir(machine):
    return allocate_linear_scan(load("fir").function, machine).function


class TestConvergence:
    def test_converges_on_loop_kernel(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.01)
        assert result.converged
        assert result.final_delta <= 0.01

    def test_iterations_grow_as_delta_shrinks(self, machine, allocated_fir):
        loose = analyze(allocated_fir, machine, delta=0.5)
        tight = analyze(allocated_fir, machine, delta=0.001)
        assert tight.iterations > loose.iterations

    def test_delta_history_eventually_decreases(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.01)
        history = [d for d in result.delta_history if np.isfinite(d)]
        assert history[-1] < history[0]

    def test_straightline_converges_in_few_sweeps(self, machine, straightline):
        allocated = allocate_linear_scan(straightline, machine).function
        result = analyze(allocated, machine, delta=0.01)
        # No loops: the second sweep already sees an unchanged state.
        assert result.iterations <= 3

    def test_nonconvergence_reported_with_runaway_leakage(self, straightline):
        hot_machine = rf64(leakage_feedback=0.5)
        # Crank the leakage baseline so the fixed point escapes.
        from repro.arch import EnergyModel, MachineDescription

        hot_machine = MachineDescription(
            geometry=hot_machine.geometry,
            energy=EnergyModel(leakage_power=5e-3, leakage_temp_coeff=0.5),
        )
        wl = load("fib")
        allocated = allocate_linear_scan(wl.function, hot_machine).function
        result = analyze(allocated, hot_machine, delta=0.001, max_iterations=300)
        assert not result.converged

    def test_raise_on_divergence_flag(self):
        from repro.arch import EnergyModel, MachineDescription, RegisterFileGeometry

        hot_machine = MachineDescription(
            geometry=RegisterFileGeometry(rows=8, cols=8),
            energy=EnergyModel(leakage_power=5e-3, leakage_temp_coeff=0.5),
        )
        wl = load("fib")
        allocated = allocate_linear_scan(wl.function, hot_machine).function
        analysis = ThermalDataflowAnalysis(
            machine=hot_machine,
            config=TDFAConfig(delta=0.001, max_iterations=200,
                              raise_on_divergence=True),
        )
        with pytest.raises(ConvergenceError) as err:
            analysis.run(allocated)
        assert err.value.partial_result is not None


class TestResultContents:
    def test_state_after_every_instruction(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.05)
        for name, block in allocated_fir.blocks.items():
            for idx in range(len(block.instructions)):
                state = result.state_after(name, idx)
                assert state.peak >= machine.energy.leakage_power  # sane

    def test_temperatures_at_least_ambient(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.05)
        ambient = 318.15
        for state in result.after.values():
            assert state.min >= ambient - 1e-9

    def test_loop_body_hotter_than_entry(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.01)
        entry_out = result.block_out["entry"]
        hottest = result.peak_state()
        assert hottest.peak > entry_out.peak

    def test_peak_state_dominates_all(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.05)
        peak = result.peak_state()
        for state in result.after.values():
            assert np.all(peak.temperatures >= state.temperatures - 1e-12)

    def test_hottest_instructions_sorted(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.05)
        top = result.hottest_instructions(5)
        peaks = [p for (_b, _i, p) in top]
        assert peaks == sorted(peaks, reverse=True)

    def test_exit_state_present(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.05)
        assert result.exit_state().peak >= 318.15

    def test_frequency_weighted_state(self, machine, allocated_fir):
        result = analyze(allocated_fir, machine, delta=0.05)
        weighted = result.frequency_weighted_state()
        assert weighted.peak <= result.peak_state().peak + 1e-9


class TestMergeModes:
    @pytest.mark.parametrize("merge", ["max", "mean", "freq"])
    def test_all_modes_converge(self, machine, allocated_fir, merge):
        result = analyze(allocated_fir, machine, delta=0.05, merge=merge)
        assert result.converged

    def test_max_merge_at_least_freq_merge(self, machine, allocated_fir):
        by_max = analyze(allocated_fir, machine, delta=0.01, merge="max")
        by_freq = analyze(allocated_fir, machine, delta=0.01, merge="freq")
        assert by_max.peak_state().peak >= by_freq.peak_state().peak - 1e-6

    def test_invalid_merge_rejected(self):
        with pytest.raises(DataflowError):
            TDFAConfig(merge="nonsense")

    def test_invalid_delta_rejected(self):
        with pytest.raises(DataflowError):
            TDFAConfig(delta=0.0)

    def test_invalid_stop_rejected(self):
        with pytest.raises(DataflowError):
            TDFAConfig(stop="nonsense")


class TestBoundStopRule:
    """stop='bound' converges to within δ of the true fixed point."""

    def test_bound_stop_tightens_the_result(self, machine, allocated_fir):
        from repro.core import AnalysisContext, summarize_in_context

        delta = 1e-4
        context = AnalysisContext(machine)
        exact = summarize_in_context(allocated_fir, context).apply(
            context.model.ambient_state()
        )
        by_change = context.analyze(allocated_fir, delta=delta, stop="change")
        by_bound = context.analyze(allocated_fir, delta=delta, stop="bound")
        import numpy as np

        err_change = np.abs(
            by_change.exit_state().temperatures - exact.temperatures
        ).max()
        err_bound = np.abs(
            by_bound.exit_state().temperatures - exact.temperatures
        ).max()
        # The bound rule runs longer and lands within δ of the exact
        # fixed point; the literal change rule stops δ-per-sweep away.
        assert by_bound.iterations >= by_change.iterations
        assert err_bound <= delta
        assert err_bound <= err_change

    def test_bound_stop_every_engine(self, machine, allocated_fir):
        import numpy as np

        from repro.core import AnalysisContext

        context = AnalysisContext(machine)
        results = {
            engine: context.analyze(
                allocated_fir, delta=1e-4, stop="bound", engine=engine,
            )
            for engine in ("compiled", "stepped")
        }
        for engine, result in results.items():
            assert result.converged, engine
        diff = np.abs(
            results["compiled"].exit_state().temperatures
            - results["stepped"].exit_state().temperatures
        ).max()
        assert diff <= 2e-4


class TestAgainstEmulation:
    def test_prediction_correlates_with_ground_truth(self, machine):
        from repro.sim import ThermalEmulator, compare_to_emulation

        wl = load("iir")
        allocation = allocate_linear_scan(wl.function, machine)
        result = analyze(allocation.function, machine, delta=0.005)
        emulation = ThermalEmulator(machine).run(
            allocation.function, args=wl.args, memory=dict(wl.memory)
        )
        report = compare_to_emulation(result.peak_state(), emulation)
        assert report.pearson_r > 0.8
        assert report.rmse_kelvin < 2.0
