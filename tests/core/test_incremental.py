"""Incremental re-analysis: dirty blocks, warm starts, bounded caches."""

import numpy as np
import pytest

from repro.arch import rf64
from repro.core import AnalysisContext
from repro.errors import DataflowError
from repro.ir import parse_instruction
from repro.ir.cfg import reverse_postorder
from repro.regalloc import allocate_linear_scan
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


def _allocated(name, machine):
    return allocate_linear_scan(load(name).function, machine).function


def _edit_block(function, name):
    """Replace one instruction in place, keeping the instruction count
    (hence the CFG signature) — the dirty set is the only staleness
    signal for this kind of edit."""
    function.blocks[name].instructions[0] = parse_instruction(
        "r1 = add r2, r3"
    )


def _worst_block_diff(a, b):
    return max(
        float(np.max(np.abs(
            np.asarray(a.block_out[name].temperatures)
            - np.asarray(b.block_out[name].temperatures)
        )))
        for name in a.block_out
    )


class TestPartialInvalidate:
    def test_other_functions_artifacts_survive(self, machine):
        fir = _allocated("fir", machine)
        crc = _allocated("crc32", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(fir)
        ctx.analyze(crc)
        ctx.summary(fir)
        ctx.summary(crc)
        ctx.block_solution(crc)
        before = ctx.stats

        ctx.invalidate(fir)

        # crc's artifacts are still served from cache...
        ctx.summary(crc)
        ctx.block_solution(crc)
        ctx.analyze(crc)
        after = ctx.stats
        assert after["summary_hits"] == before["summary_hits"] + 1
        assert after["solve_hits"] == before["solve_hits"] + 1
        assert after["sweep_compiles"] == before["sweep_compiles"]
        # ...while fir's summary really was dropped.
        ctx.summary(fir)
        assert ctx.stats["summary_compiles"] == before["summary_compiles"] + 1

    def test_blocks_without_function_rejected(self, machine):
        ctx = AnalysisContext(machine)
        with pytest.raises(ValueError):
            ctx.invalidate(blocks=["entry"])

    def test_unknown_block_names_rejected(self, machine):
        fir = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(fir)
        with pytest.raises(DataflowError):
            ctx.invalidate(fir, blocks=["no_such_block"])


class TestDirtyBlockReanalysis:
    DELTA = 0.01

    def _edited_chip_run(self, machine, warm_start):
        function = _allocated("matmul", machine)
        rpo = reverse_postorder(function)
        ctx = AnalysisContext.for_chip(machine)
        ctx.analyze(function, delta=self.DELTA, sweep="sparse")
        _edit_block(function, rpo[1])
        ctx.invalidate(function, blocks=[rpo[1]])
        incremental = ctx.analyze(
            function, delta=self.DELTA, sweep="sparse", warm_start=warm_start
        )
        cold = AnalysisContext.for_chip(machine).analyze(
            function, delta=self.DELTA, sweep="sparse"
        )
        return ctx, incremental, cold

    def test_patched_reanalysis_reproduces_cold_states(self, machine):
        """The patched sweep equals a cold recompile bit for bit, so the
        re-run lands on the cold trajectory well inside 1e-12."""
        ctx, incremental, cold = self._edited_chip_run(
            machine, warm_start=False
        )
        assert ctx.stats["sweep_patches"] == 1
        assert ctx.stats["sweep_compiles"] == 1  # only the original build
        assert incremental.iterations == cold.iterations
        assert incremental.delta_history == cold.delta_history
        assert _worst_block_diff(incremental, cold) <= 1e-12

    def test_warm_start_converges_faster_within_tolerance(self, machine):
        ctx, incremental, cold = self._edited_chip_run(
            machine, warm_start=True
        )
        assert ctx.stats["sweep_patches"] == 1
        assert incremental.converged
        assert incremental.iterations < cold.iterations
        # Both runs stop within the convergence band around the same
        # fixed point, approaching it from different starting states —
        # so they can sit on opposite sides of it.
        assert _worst_block_diff(incremental, cold) <= 4 * self.DELTA

    def test_clean_reanalysis_still_hits_the_sweep_cache(self, machine):
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(function)
        ctx.analyze(function)
        assert ctx.stats["sweep_compiles"] == 1
        assert ctx.stats["sweep_hits"] == 1
        assert ctx.stats["sweep_patches"] == 0

    def test_warm_start_off_by_default_keeps_runs_identical(self, machine):
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        first = ctx.analyze(function)
        second = ctx.analyze(function)
        assert first.iterations == second.iterations
        assert first.delta_history == second.delta_history
        assert _worst_block_diff(first, second) == 0.0

    def test_full_function_invalidate_recompiles_the_sweep(self, machine):
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(function)
        ctx.invalidate(function)
        ctx.analyze(function)
        assert ctx.stats["sweep_compiles"] == 2
        assert ctx.stats["sweep_patches"] == 0


class TestBoundedCaches:
    def test_capacity_below_one_rejected(self, machine):
        with pytest.raises(ValueError):
            AnalysisContext(machine, cache_capacity=0)

    def test_fifo_eviction_counts(self, machine):
        ctx = AnalysisContext(machine, cache_capacity=2)
        kernels = [
            _allocated(name, machine) for name in ("fir", "crc32", "fib")
        ]
        for function in kernels:
            ctx.summary(function)
        assert ctx.stats["evictions"] >= 1
        # The oldest summary was evicted: re-requesting recompiles.
        compiles = ctx.stats["summary_compiles"]
        ctx.summary(kernels[0])
        assert ctx.stats["summary_compiles"] == compiles + 1
        # The newest is still resident.
        hits = ctx.stats["summary_hits"]
        ctx.summary(kernels[2])
        assert ctx.stats["summary_hits"] == hits + 1

    def test_default_capacity_never_evicts_the_suite(self, machine):
        ctx = AnalysisContext(machine)
        for name in ("fir", "crc32", "fib"):
            ctx.analyze(_allocated(name, machine))
        assert ctx.stats["evictions"] == 0


class TestMemoryFootprint:
    def test_stats_expose_nbytes_per_cache(self, machine):
        ctx = AnalysisContext(machine)
        function = _allocated("fir", machine)
        ctx.analyze(function)
        ctx.summary(function)
        stats = ctx.stats
        for key in ("transfer_nbytes", "summary_nbytes",
                    "solution_nbytes", "warm_start_nbytes"):
            assert key in stats
        assert stats["transfer_nbytes"] > 0
        assert stats["summary_nbytes"] > 0

    def test_sparse_sweep_shrinks_the_transfer_footprint(self, machine):
        function = _allocated("matmul", machine)
        dense_ctx = AnalysisContext.for_chip(machine)
        dense_ctx.analyze(function, sweep="batched")
        sparse_ctx = AnalysisContext.for_chip(machine)
        sparse_ctx.analyze(function, sweep="sparse")
        dense_nbytes = dense_ctx.stats["transfer_nbytes"]
        sparse_nbytes = sparse_ctx.stats["transfer_nbytes"]
        assert sparse_nbytes < dense_nbytes
