"""Incremental re-analysis: dirty blocks, warm starts, bounded caches."""

import numpy as np
import pytest

from repro.arch import rf64
from repro.core import AnalysisContext
from repro.errors import DataflowError
from repro.ir import parse_instruction
from repro.ir.cfg import reverse_postorder
from repro.regalloc import allocate_linear_scan
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


def _allocated(name, machine):
    return allocate_linear_scan(load(name).function, machine).function


def _edit_block(function, name):
    """Replace one instruction in place, keeping the instruction count
    (hence the CFG signature) — the dirty set is the only staleness
    signal for this kind of edit."""
    function.blocks[name].instructions[0] = parse_instruction(
        "r1 = add r2, r3"
    )


def _worst_block_diff(a, b):
    return max(
        float(np.max(np.abs(
            np.asarray(a.block_out[name].temperatures)
            - np.asarray(b.block_out[name].temperatures)
        )))
        for name in a.block_out
    )


class TestPartialInvalidate:
    def test_other_functions_artifacts_survive(self, machine):
        fir = _allocated("fir", machine)
        crc = _allocated("crc32", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(fir)
        ctx.analyze(crc)
        ctx.summary(fir)
        ctx.summary(crc)
        ctx.block_solution(crc)
        before = ctx.stats

        ctx.invalidate(fir)

        # crc's artifacts are still served from cache...
        ctx.summary(crc)
        ctx.block_solution(crc)
        ctx.analyze(crc)
        after = ctx.stats
        assert after["summary_hits"] == before["summary_hits"] + 1
        assert after["solve_hits"] == before["solve_hits"] + 1
        assert after["sweep_compiles"] == before["sweep_compiles"]
        # ...while fir's summary really was dropped.
        ctx.summary(fir)
        assert ctx.stats["summary_compiles"] == before["summary_compiles"] + 1

    def test_blocks_without_function_rejected(self, machine):
        ctx = AnalysisContext(machine)
        with pytest.raises(ValueError):
            ctx.invalidate(blocks=["entry"])

    def test_unknown_block_names_rejected(self, machine):
        fir = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(fir)
        with pytest.raises(DataflowError):
            ctx.invalidate(fir, blocks=["no_such_block"])


class TestDirtyBlockReanalysis:
    DELTA = 0.01

    def _edited_chip_run(self, machine, warm_start):
        function = _allocated("matmul", machine)
        rpo = reverse_postorder(function)
        ctx = AnalysisContext.for_chip(machine)
        ctx.analyze(function, delta=self.DELTA, sweep="sparse")
        _edit_block(function, rpo[1])
        ctx.invalidate(function, blocks=[rpo[1]])
        incremental = ctx.analyze(
            function, delta=self.DELTA, sweep="sparse", warm_start=warm_start
        )
        cold = AnalysisContext.for_chip(machine).analyze(
            function, delta=self.DELTA, sweep="sparse"
        )
        return ctx, incremental, cold

    def test_patched_reanalysis_reproduces_cold_states(self, machine):
        """The patched sweep equals a cold recompile bit for bit, so the
        re-run lands on the cold trajectory well inside 1e-12."""
        ctx, incremental, cold = self._edited_chip_run(
            machine, warm_start=False
        )
        assert ctx.stats["sweep_patches"] == 1
        assert ctx.stats["sweep_compiles"] == 1  # only the original build
        assert incremental.iterations == cold.iterations
        assert incremental.delta_history == cold.delta_history
        assert _worst_block_diff(incremental, cold) <= 1e-12

    def test_warm_start_converges_faster_within_tolerance(self, machine):
        ctx, incremental, cold = self._edited_chip_run(
            machine, warm_start=True
        )
        assert ctx.stats["sweep_patches"] == 1
        assert incremental.converged
        assert incremental.iterations < cold.iterations
        # Both runs stop within the convergence band around the same
        # fixed point, approaching it from different starting states —
        # so they can sit on opposite sides of it.
        assert _worst_block_diff(incremental, cold) <= 4 * self.DELTA

    def test_clean_reanalysis_still_hits_the_sweep_cache(self, machine):
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(function)
        ctx.analyze(function)
        assert ctx.stats["sweep_compiles"] == 1
        assert ctx.stats["sweep_hits"] == 1
        assert ctx.stats["sweep_patches"] == 0

    def test_warm_start_off_by_default_keeps_runs_identical(self, machine):
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        first = ctx.analyze(function)
        second = ctx.analyze(function)
        assert first.iterations == second.iterations
        assert first.delta_history == second.delta_history
        assert _worst_block_diff(first, second) == 0.0

    def test_full_function_invalidate_recompiles_the_sweep(self, machine):
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(function)
        ctx.invalidate(function)
        ctx.analyze(function)
        assert ctx.stats["sweep_compiles"] == 2
        assert ctx.stats["sweep_patches"] == 0


class TestPipelineIncremental:
    """Per-stage dirty propagation through the stacked pipeline engine."""

    DELTA = 0.01
    STAGES = ("matmul", "fir", "conv3x3")

    def _stages(self, machine):
        return [_allocated(name, machine) for name in self.STAGES]

    def _worst_exit_diff(self, a, b):
        return max(
            float(np.max(np.abs(x.temperatures - y.temperatures)))
            for x, y in zip(a.exit_states, b.exit_states)
        )

    def test_one_stage_edit_patches_only_that_stage(self, machine):
        """An in-place edit of one stage patches that stage's sweep rows
        and recomposes the pipeline by extractor re-use — no sweep or
        pipeline recompile anywhere."""
        fns = self._stages(machine)
        ctx = AnalysisContext.for_chip(machine)
        base = ctx.analyze_pipeline(fns, delta=self.DELTA, sweep="sparse")
        assert base.converged
        assert base.stage_sweep_forms == ["sparse"] * len(fns)
        before = ctx.stats
        rpo = reverse_postorder(fns[1])
        _edit_block(fns[1], rpo[1])
        ctx.invalidate(fns[1], blocks=[rpo[1]])
        warm = ctx.analyze_pipeline(
            fns, delta=self.DELTA, sweep="sparse", warm_start=True
        )
        assert warm.converged
        after = ctx.stats
        assert after["sweep_patches"] == before["sweep_patches"] + 1
        assert after["sweep_compiles"] == before["sweep_compiles"]
        assert after["pipeline_sweep_patches"] == \
            before["pipeline_sweep_patches"] + 1
        assert after["pipeline_compiles"] == before["pipeline_compiles"]
        # The warm start really came from the stored pipeline solution.
        assert after["pipeline_warm_start_nbytes"] > 0

    @pytest.mark.parametrize("sweep", ["batched", "sparse"])
    def test_edited_pipeline_matches_cold_recompile(self, machine, sweep):
        """After an edit + warm re-analysis, a cold-initialized run
        through the patched pipeline reproduces a fresh context's
        trajectory — dense and CSR forms alike."""
        fns = self._stages(machine)
        ctx = AnalysisContext.for_chip(machine)
        ctx.analyze_pipeline(fns, delta=self.DELTA, sweep=sweep)
        rpo = reverse_postorder(fns[0])
        _edit_block(fns[0], rpo[1])
        ctx.invalidate(fns[0], blocks=[rpo[1]])
        warm = ctx.analyze_pipeline(
            fns, delta=self.DELTA, sweep=sweep, warm_start=True
        )
        assert warm.converged
        tight = ctx.analyze_pipeline(fns, delta=1e-9, sweep=sweep)
        fresh = AnalysisContext.for_chip(machine).analyze_pipeline(
            fns, delta=1e-9, sweep=sweep
        )
        assert tight.iterations == fresh.iterations
        assert self._worst_exit_diff(tight, fresh) <= 1e-12

    def test_structural_edit_falls_back_and_stays_exact(self, machine):
        """A count-changing (structural) edit is refused by the rank
        updater, routed through the dirty-block path, and the next
        analysis still reproduces a cold recompile."""
        fns = self._stages(machine)
        ctx = AnalysisContext.for_chip(machine)
        ctx.analyze_pipeline(fns, delta=self.DELTA, sweep="sparse")
        rpo = reverse_postorder(fns[1])
        block = fns[1].blocks[rpo[1]]
        block.instructions.insert(0, parse_instruction("r9 = add r2, r3"))
        assert ctx.update_instruction(fns[1], rpo[1], 0) is False
        assert ctx.stats["rank_update_fallbacks"] >= 1
        assert ctx.stats["rank_updates"] == 0
        redo = ctx.analyze_pipeline(
            fns, delta=self.DELTA, sweep="sparse", warm_start=True
        )
        assert redo.converged
        tight = ctx.analyze_pipeline(fns, delta=1e-9, sweep="sparse")
        fresh = AnalysisContext.for_chip(machine).analyze_pipeline(
            fns, delta=1e-9, sweep="sparse"
        )
        assert self._worst_exit_diff(tight, fresh) <= 1e-12

    def test_full_stage_invalidate_recomposes_from_scratch(self, machine):
        fns = self._stages(machine)
        ctx = AnalysisContext.for_chip(machine)
        ctx.analyze_pipeline(fns, delta=self.DELTA, sweep="sparse")
        before = ctx.stats
        ctx.invalidate(fns[1])
        ctx.analyze_pipeline(fns, delta=self.DELTA, sweep="sparse")
        after = ctx.stats
        assert after["sweep_compiles"] == before["sweep_compiles"] + 1
        assert after["pipeline_compiles"] == before["pipeline_compiles"] + 1
        assert after["pipeline_sweep_patches"] == \
            before["pipeline_sweep_patches"]


class TestWoodburyRankUpdates:
    """Factored single-instruction updates vs. full recompiles."""

    DELTA = 0.01
    OPCODES = ("add", "sub", "mul", "xor", "and", "or")

    def test_random_single_instruction_edits_match_recompile(self, machine):
        """Property: over random in-place single-instruction
        perturbations, the rank-updated caches agree with a fresh cold
        recompile to 1e-12 — and never pay a sweep recompile."""
        rng = np.random.default_rng(7)
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        ctx.analyze(function, delta=self.DELTA)
        rpo = reverse_postorder(function)
        # Editable sites: never a block's last instruction, so branches
        # (hence the CFG) are untouched and the edit is non-structural.
        candidates = [
            name for name in rpo
            if len(function.blocks[name].instructions) >= 2
        ]
        assert candidates
        for trial in range(6):
            name = candidates[int(rng.integers(len(candidates)))]
            index = int(rng.integers(
                len(function.blocks[name].instructions) - 1
            ))
            op = self.OPCODES[int(rng.integers(len(self.OPCODES)))]
            dest = 1 + int(rng.integers(8))
            function.blocks[name].instructions[index] = parse_instruction(
                f"r{dest} = {op} r2, r3"
            )
            assert ctx.update_instruction(function, name, index), \
                (trial, name, index)
            via_update = ctx.analyze(function, delta=1e-9)
            fresh = AnalysisContext(machine).analyze(function, delta=1e-9)
            assert _worst_block_diff(via_update, fresh) <= 1e-12, \
                (trial, name, index)
        stats = ctx.stats
        assert stats["rank_updates"] == 6
        assert stats["rank_update_fallbacks"] == 0
        assert stats["sweep_compiles"] == 1  # only the original build
        assert stats["sweep_patches"] == 0

    def test_rank_updated_summary_matches_cold_extraction(self, machine):
        """The Woodbury-corrected block solutions feed summaries: the
        linear part is untouched, the offset agrees to 1e-12."""
        function = _allocated("matmul", machine)
        ctx = AnalysisContext(machine)
        ctx.summary(function)
        rpo = reverse_postorder(function)
        function.blocks[rpo[1]].instructions[0] = parse_instruction(
            "r1 = xor r2, r3"
        )
        assert ctx.update_instruction(function, rpo[1], 0)
        patched = ctx.summary(function)
        cold = AnalysisContext(machine).summary(function)
        assert float(np.max(np.abs(patched.matrix - cold.matrix))) == 0.0
        assert float(np.max(np.abs(patched.offset - cold.offset))) <= 1e-12
        assert ctx.stats["solve_compiles"] == 1  # corrected, not re-solved

    def test_unknown_block_rejected(self, machine):
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        with pytest.raises(DataflowError):
            ctx.update_instruction(function, "no_such_block", 0)

    def test_cold_cache_falls_back(self, machine):
        """With nothing compiled yet there is nothing to rank-update:
        the edit routes through the dirty path and analysis stays
        correct."""
        function = _allocated("fir", machine)
        ctx = AnalysisContext(machine)
        rpo = reverse_postorder(function)
        ctx.analyze(function, delta=self.DELTA)  # compile once
        ctx.invalidate(function)  # ...and drop everything again
        _edit_block(function, rpo[1])
        assert ctx.update_instruction(function, rpo[1], 0) is False
        assert ctx.stats["rank_update_fallbacks"] >= 1
        result = ctx.analyze(function, delta=self.DELTA)
        assert result.converged


class TestBoundedCaches:
    def test_capacity_below_one_rejected(self, machine):
        with pytest.raises(ValueError):
            AnalysisContext(machine, cache_capacity=0)

    def test_fifo_eviction_counts(self, machine):
        ctx = AnalysisContext(machine, cache_capacity=2)
        kernels = [
            _allocated(name, machine) for name in ("fir", "crc32", "fib")
        ]
        for function in kernels:
            ctx.summary(function)
        assert ctx.stats["evictions"] >= 1
        # The oldest summary was evicted: re-requesting recompiles.
        compiles = ctx.stats["summary_compiles"]
        ctx.summary(kernels[0])
        assert ctx.stats["summary_compiles"] == compiles + 1
        # The newest is still resident.
        hits = ctx.stats["summary_hits"]
        ctx.summary(kernels[2])
        assert ctx.stats["summary_hits"] == hits + 1

    def test_default_capacity_never_evicts_the_suite(self, machine):
        ctx = AnalysisContext(machine)
        for name in ("fir", "crc32", "fib"):
            ctx.analyze(_allocated(name, machine))
        assert ctx.stats["evictions"] == 0


class TestMemoryFootprint:
    def test_stats_expose_nbytes_per_cache(self, machine):
        ctx = AnalysisContext(machine)
        function = _allocated("fir", machine)
        ctx.analyze(function)
        ctx.summary(function)
        stats = ctx.stats
        for key in ("transfer_nbytes", "summary_nbytes",
                    "solution_nbytes", "warm_start_nbytes"):
            assert key in stats
        assert stats["transfer_nbytes"] > 0
        assert stats["summary_nbytes"] > 0

    def test_sparse_sweep_shrinks_the_transfer_footprint(self, machine):
        function = _allocated("matmul", machine)
        dense_ctx = AnalysisContext.for_chip(machine)
        dense_ctx.analyze(function, sweep="batched")
        sparse_ctx = AnalysisContext.for_chip(machine)
        sparse_ctx.analyze(function, sweep="sparse")
        dense_nbytes = dense_ctx.stats["transfer_nbytes"]
        sparse_nbytes = sparse_ctx.stats["transfer_nbytes"]
        assert sparse_nbytes < dense_nbytes
