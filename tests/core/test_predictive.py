"""Pre-allocation placement models (the paper's 'more ambitious' mode)."""

import numpy as np
import pytest

from repro.arch import rf64
from repro.core import AllocationPlacement, PolicyPlacement, UniformPlacement
from repro.ir.values import preg, vreg
from repro.regalloc import (
    ChessboardPolicy,
    FirstFreePolicy,
    RandomPolicy,
    allocate_linear_scan,
)
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def fir_function():
    return load("fir").function


class TestUniformPlacement:
    def test_distribution_sums_to_one(self, machine):
        placement = UniformPlacement(machine)
        assert placement.distribution(vreg("x")).sum() == pytest.approx(1.0)

    def test_respects_reserved_registers(self):
        from repro.arch import MachineDescription, RegisterFileGeometry

        m = MachineDescription(
            geometry=RegisterFileGeometry(rows=2, cols=2),
            reserved_registers=(0,),
        )
        dist = UniformPlacement(m).distribution(vreg("x"))
        assert dist[0] == 0.0
        assert dist.sum() == pytest.approx(1.0)

    def test_physical_registers_stay_one_hot(self, machine):
        dist = UniformPlacement(machine).distribution(preg(9))
        assert dist[9] == 1.0


class TestAllocationPlacement:
    def test_matches_allocation(self, machine, fir_function):
        allocation = allocate_linear_scan(fir_function, machine)
        placement = AllocationPlacement(allocation, 64)
        for vr, idx in allocation.mapping.items():
            dist = placement.distribution(vr)
            assert dist[idx] == 1.0

    def test_unmapped_register_gets_zero_vector(self, machine, fir_function):
        allocation = allocate_linear_scan(fir_function, machine)
        placement = AllocationPlacement(allocation, 64)
        assert placement.distribution(vreg("ghost")).sum() == 0.0

    def test_from_mapping(self):
        placement = AllocationPlacement.from_mapping({vreg("a"): 3}, 16)
        assert placement.distribution(vreg("a"))[3] == 1.0


class TestPolicyPlacement:
    def test_deterministic_policy_gives_one_hot(self, machine, fir_function):
        placement = PolicyPlacement(
            fir_function, machine,
            policy_factory=lambda seed: FirstFreePolicy(),
            samples=4,
        )
        reference = allocate_linear_scan(fir_function, machine, FirstFreePolicy())
        for vr, idx in reference.mapping.items():
            dist = placement.distribution(vr)
            assert dist[idx] == pytest.approx(1.0)

    def test_random_policy_spreads_mass(self, machine, fir_function):
        placement = PolicyPlacement(
            fir_function, machine,
            policy_factory=lambda seed: RandomPolicy(seed=seed),
            samples=16,
        )
        # Pick any virtual register: its mass should not be concentrated.
        some_vreg = next(iter(fir_function.virtual_registers()))
        dist = placement.distribution(some_vreg)
        assert dist.sum() == pytest.approx(1.0)
        assert dist.max() < 1.0  # spread over several samples

    def test_chessboard_mass_on_preferred_color(self, machine, fir_function):
        placement = PolicyPlacement(
            fir_function, machine,
            policy_factory=lambda seed: ChessboardPolicy(),
            samples=2,
        )
        geometry = machine.geometry
        for vr in fir_function.virtual_registers():
            dist = placement.distribution(vr)
            if dist.sum() == 0:
                continue
            for idx in np.nonzero(dist)[0]:
                assert geometry.chessboard_color(int(idx)) == 0

    def test_spill_probability_zero_on_big_machine(self, machine, fir_function):
        placement = PolicyPlacement(fir_function, machine, samples=2)
        for vr in fir_function.virtual_registers():
            assert placement.spill_probability(vr) == pytest.approx(0.0)

    def test_spill_probability_under_pressure(self, fir_function):
        from repro.arch import MachineDescription, RegisterFileGeometry

        tiny = MachineDescription(
            geometry=RegisterFileGeometry(rows=2, cols=2)
        )
        placement = PolicyPlacement(fir_function, tiny, samples=2)
        spilled_any = any(
            placement.spill_probability(vr) > 0.0
            for vr in fir_function.virtual_registers()
        )
        assert spilled_any

    def test_invalid_samples(self, machine, fir_function):
        from repro.errors import ThermalModelError

        with pytest.raises(ThermalModelError):
            PolicyPlacement(fir_function, machine, samples=0)


class TestPredictiveAnalysis:
    def test_tdfa_runs_preallocation(self, machine, fir_function):
        """The paper's headline: analysis before register allocation."""
        from repro.core import analyze

        placement = PolicyPlacement(fir_function, machine, samples=4)
        result = analyze(fir_function, machine, delta=0.05, placement=placement)
        assert result.converged
        assert result.peak_state().peak > 318.15

    def test_predictive_matches_exact_for_deterministic_policy(
        self, machine, fir_function
    ):
        """First-free is fully predictable pre-allocation: the predictive
        analysis must agree with the post-assignment analysis."""
        from repro.core import ExactPlacement, analyze

        placement = PolicyPlacement(
            fir_function, machine,
            policy_factory=lambda seed: FirstFreePolicy(), samples=1,
        )
        predictive = analyze(fir_function, machine, delta=0.01,
                             placement=placement)
        allocation = allocate_linear_scan(fir_function, machine, FirstFreePolicy())
        exact = analyze(allocation.function, machine, delta=0.01)
        assert predictive.peak_state().peak == pytest.approx(
            exact.peak_state().peak, abs=0.05
        )
