"""Instruction power model and placements."""

import numpy as np
import pytest

from repro.arch import EnergyModel, MachineDescription, RegisterFileGeometry, rf64
from repro.core.estimator import ExactPlacement, InstructionPowerModel
from repro.dataflow import bitwidth_analysis
from repro.errors import ThermalModelError
from repro.ir import parse_function, parse_instruction
from repro.thermal import RFThermalModel


@pytest.fixture
def machine():
    return rf64()


@pytest.fixture
def model(machine):
    return RFThermalModel(machine.geometry, energy=machine.energy)


@pytest.fixture
def power_model(machine, model):
    return InstructionPowerModel(
        machine=machine,
        model=model,
        placement=ExactPlacement(machine.geometry.num_registers),
    )


class TestExactPlacement:
    def test_one_hot(self):
        placement = ExactPlacement(64)
        from repro.ir.values import preg

        dist = placement.distribution(preg(5))
        assert dist[5] == 1.0
        assert dist.sum() == 1.0

    def test_virtual_register_rejected(self):
        placement = ExactPlacement(64)
        from repro.ir.values import vreg

        with pytest.raises(ThermalModelError, match="physical"):
            placement.distribution(vreg("v"))

    def test_out_of_range_rejected(self):
        from repro.ir.values import preg

        with pytest.raises(ThermalModelError):
            ExactPlacement(4).distribution(preg(9))


class TestDynamicPower:
    def test_power_proportional_to_accesses(self, power_model, machine):
        one_read = parse_instruction("r1 = copy r0")
        three_access = parse_instruction("r0 = add r0, r0")
        p1 = power_model.dynamic_power(one_read).sum()
        p3 = power_model.dynamic_power(three_access).sum()
        em = machine.energy
        assert p1 == pytest.approx(
            (em.access_power(False) + em.access_power(True))
        )
        assert p3 == pytest.approx(
            (2 * em.access_power(False) + em.access_power(True))
        )

    def test_power_lands_on_accessed_cells(self, power_model):
        inst = parse_instruction("r10 = add r20, r30")
        power = power_model.dynamic_power(inst)
        hot = set(np.nonzero(power)[0])
        assert hot == {10, 20, 30}

    def test_nop_injects_nothing(self, power_model):
        assert power_model.dynamic_power(parse_instruction("nop")).sum() == 0.0

    def test_constants_free(self, power_model):
        inst = parse_instruction("r1 = li 42")
        power = power_model.dynamic_power(inst)
        assert np.nonzero(power)[0].tolist() == [1]

    def test_caching_returns_same_array(self, power_model):
        inst = parse_instruction("r1 = add r2, r3")
        assert power_model.dynamic_power(inst) is power_model.dynamic_power(inst)


class TestLeakage:
    def test_total_power_includes_leakage(self, machine, model, power_model):
        inst = parse_instruction("nop")
        state = model.ambient_state()
        total = power_model.total_power(inst, state, include_leakage=True)
        assert total.sum() == pytest.approx(model.leakage_vector().sum())
        bare = power_model.total_power(inst, state, include_leakage=False)
        assert bare.sum() == 0.0

    def test_feedback_flag(self, model):
        hot_machine = MachineDescription(
            geometry=RegisterFileGeometry(rows=8, cols=8),
            energy=EnergyModel(leakage_temp_coeff=0.05),
        )
        pm = InstructionPowerModel(
            machine=hot_machine,
            model=RFThermalModel(hot_machine.geometry, energy=hot_machine.energy),
            placement=ExactPlacement(64),
        )
        assert pm.has_leakage_feedback


class TestBitwidthScaling:
    def test_narrow_values_cost_less(self):
        geometry = RegisterFileGeometry(rows=8, cols=8)
        machine = MachineDescription(
            geometry=geometry, energy=EnergyModel(bitwidth_scaling=True)
        )
        model = RFThermalModel(geometry, energy=machine.energy)
        src = """
        func @f() {
        entry:
          %one = li 1
          %big = li 100000
          %x = add %one, %one
          %y = add %big, %big
          ret %y
        }
        """
        f = parse_function(src)
        widths = bitwidth_analysis(f)
        from repro.core.predictive import UniformPlacement

        pm = InstructionPowerModel(
            machine=machine,
            model=model,
            placement=UniformPlacement(machine),
            bitwidths=widths,
        )
        narrow = pm.dynamic_power(f.entry.instructions[2]).sum()
        wide = pm.dynamic_power(f.entry.instructions[3]).sum()
        assert narrow < wide
