"""Property-based tests (hypothesis) on core invariants.

Strategy sources:
* random-but-valid IR from the seeded workload generators;
* random thermal fields and power vectors.

Each property captures an invariant the reproduction's claims depend on:
parser/printer round trips, allocation correctness under arbitrary
policies, semantics preservation of every transformation, and the
physical sanity of the thermal operators (monotonicity, contraction).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import RegisterFileGeometry, rf16, rf64
from repro.ir import parse_function, print_function, verify_function
from repro.regalloc import (
    allocate_graph_coloring,
    allocate_linear_scan,
    build_interference_graph,
    default_policies,
)
from repro.sim import Interpreter
from repro.thermal import RFThermalModel, ThermalGrid, ThermalState
from repro.workloads import pressure_program, random_loop_program, random_program

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MACHINE = rf64()
SMALL_MACHINE = rf16()


# ----------------------------------------------------------------------
# IR round trips
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_print_parse_round_trip(seed):
    f = random_program(seed=seed)
    text = print_function(f)
    again = print_function(parse_function(text))
    assert text == again


@given(seed=st.integers(0, 10_000), blocks=st.integers(1, 6), ops=st.integers(1, 10))
@_SETTINGS
def test_generated_ir_always_verifies(seed, blocks, ops):
    f = random_program(seed=seed, num_blocks=blocks, ops_per_block=ops)
    verify_function(f)


# ----------------------------------------------------------------------
# Allocation correctness under arbitrary policies and machines
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 500),
    policy_index=st.integers(0, 5),
    small=st.booleans(),
)
@_SETTINGS
def test_linear_scan_preserves_semantics(seed, policy_index, small):
    wl = random_loop_program(seed=seed, body_ops=6, live_vars=4, iterations=8)
    machine = SMALL_MACHINE if small else MACHINE
    policy = default_policies(seed=seed)[policy_index]
    allocation = allocate_linear_scan(wl.function, machine, policy)
    verify_function(allocation.function, allow_mixed_registers=False)
    result = Interpreter().run(allocation.function)
    assert result.return_value == wl.expected_return


@given(seed=st.integers(0, 500), policy_index=st.integers(0, 5))
@_SETTINGS
def test_graph_coloring_is_proper_coloring(seed, policy_index):
    wl = random_loop_program(seed=seed, body_ops=8, live_vars=5, iterations=4)
    policy = default_policies(seed=seed)[policy_index]
    allocation = allocate_graph_coloring(wl.function, MACHINE, policy)
    graph = build_interference_graph(wl.function)
    for a in allocation.mapping:
        for b in allocation.mapping:
            if a != b and graph.interferes(a, b):
                assert allocation.mapping[a] != allocation.mapping[b]


@given(k=st.integers(2, 20))
@_SETTINGS
def test_spilling_terminates_under_extreme_pressure(k):
    from repro.arch import MachineDescription

    tiny = MachineDescription(
        name="rf4", geometry=RegisterFileGeometry(rows=2, cols=2)
    )
    wl = pressure_program(k, iterations=3)
    allocation = allocate_linear_scan(wl.function, tiny)
    result = Interpreter().run(allocation.function)
    assert result.return_value == wl.expected_return


# ----------------------------------------------------------------------
# Transformation passes never change program meaning
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 500), chunk=st.integers(1, 4))
@_SETTINGS
def test_split_pass_preserves_semantics(seed, chunk):
    from repro.opt import SplitLiveRangesPass

    wl = random_loop_program(seed=seed, body_ops=8, live_vars=4, iterations=6)
    targets = tuple(sorted(wl.function.virtual_registers(), key=str))
    transformed, _report = SplitLiveRangesPass(targets=targets, chunk=chunk).run(
        wl.function
    )
    verify_function(transformed)
    assert Interpreter().run(transformed).return_value == wl.expected_return


@given(seed=st.integers(0, 500))
@_SETTINGS
def test_schedule_pass_preserves_semantics(seed):
    from repro.opt import ThermalSchedulePass

    wl = random_loop_program(seed=seed, body_ops=10, live_vars=5, iterations=6)
    transformed, _report = ThermalSchedulePass().run(wl.function)
    verify_function(transformed)
    assert Interpreter().run(transformed).return_value == wl.expected_return


@given(seed=st.integers(0, 500))
@_SETTINGS
def test_dce_preserves_semantics(seed):
    from repro.opt import DeadCodeEliminationPass

    wl = random_loop_program(seed=seed, body_ops=8, live_vars=4, iterations=6)
    transformed, _report = DeadCodeEliminationPass().run(wl.function)
    assert Interpreter().run(transformed).return_value == wl.expected_return


@given(seed=st.integers(0, 200))
@_SETTINGS
def test_reassign_preserves_semantics(seed):
    from repro.opt import ReassignPass

    wl = random_loop_program(seed=seed, body_ops=6, live_vars=4, iterations=5)
    allocation = allocate_linear_scan(wl.function, MACHINE)
    transformed, _report = ReassignPass(machine=MACHINE).run(allocation.function)
    verify_function(transformed, allow_mixed_registers=False)
    assert Interpreter().run(transformed).return_value == wl.expected_return


# ----------------------------------------------------------------------
# Thermal operator physics
# ----------------------------------------------------------------------
_GEO = RegisterFileGeometry(rows=4, cols=4)
_MODEL = RFThermalModel(_GEO)


@st.composite
def power_vectors(draw):
    values = draw(
        st.lists(st.floats(0.0, 1e-2), min_size=16, max_size=16)
    )
    return np.array(values)


@st.composite
def thermal_fields(draw):
    values = draw(
        st.lists(st.floats(300.0, 400.0), min_size=16, max_size=16)
    )
    return ThermalState(_MODEL.grid, np.array(values))


@given(p=power_vectors())
@_SETTINGS
def test_steady_state_at_least_ambient(p):
    ss = _MODEL.steady_state(p)
    assert ss.min >= _MODEL.params.ambient - 1e-9


@given(p=power_vectors(), q=power_vectors())
@_SETTINGS
def test_more_power_never_cools(p, q):
    """Monotonicity: adding power can only raise every node temperature."""
    base = _MODEL.steady_state(p)
    more = _MODEL.steady_state(p + q)
    assert np.all(more.temperatures >= base.temperatures - 1e-9)


@given(state=thermal_fields(), p=power_vectors())
@_SETTINGS
def test_step_is_contraction(state, p):
    """Two different states stepped under equal power move closer —
    the property that makes the paper's Fig. 2 iteration converge."""
    other = ThermalState(_MODEL.grid, state.temperatures + 5.0)
    stepped_a = _MODEL.step(state, p, dt=1e-9, cycles=10)
    stepped_b = _MODEL.step(other, p, dt=1e-9, cycles=10)
    before = state.max_abs_diff(other)
    after = stepped_a.max_abs_diff(stepped_b)
    assert after < before


@given(state=thermal_fields())
@_SETTINGS
def test_merge_max_upper_bounds_inputs(state):
    shifted = ThermalState(_MODEL.grid, state.temperatures[::-1].copy())
    merged = state.merge_max([shifted])
    assert np.all(merged.temperatures >= state.temperatures - 1e-12)
    assert np.all(merged.temperatures >= shifted.temperatures - 1e-12)


@given(p=power_vectors(), scale=st.floats(0.1, 10.0))
@_SETTINGS
def test_steady_state_linearity(p, scale):
    rise1 = _MODEL.steady_state(p).temperatures - _MODEL.params.ambient
    rise2 = _MODEL.steady_state(p * scale).temperatures - _MODEL.params.ambient
    assert np.allclose(rise2, rise1 * scale, rtol=1e-8, atol=1e-9)


# ----------------------------------------------------------------------
# Interpreter arithmetic matches Python's wrapped semantics
# ----------------------------------------------------------------------
@given(a=st.integers(-(2**31), 2**31 - 1), b=st.integers(-(2**31), 2**31 - 1))
@_SETTINGS
def test_interpreter_add_wraps_like_reference(a, b):
    from repro.workloads import w32

    src = "func @f(%a, %b) {\nentry:\n  %r = add %a, %b\n  ret %r\n}\n"
    f = parse_function(src)
    result = Interpreter().run(f, args=[a, b])
    assert result.return_value == w32(a + b)


@given(a=st.integers(-(2**31), 2**31 - 1), b=st.integers(-(2**31), 2**31 - 1))
@_SETTINGS
def test_interpreter_mul_wraps_like_reference(a, b):
    from repro.workloads import w32

    src = "func @f(%a, %b) {\nentry:\n  %r = mul %a, %b\n  ret %r\n}\n"
    f = parse_function(src)
    result = Interpreter().run(f, args=[a, b])
    assert result.return_value == w32(w32(a) * w32(b))
