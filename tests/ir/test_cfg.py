"""CFG traversals cross-checked against networkx where possible."""

import networkx as nx

from repro.ir import (
    back_edges,
    edges,
    linearize,
    parse_function,
    postorder,
    reachable_blocks,
    reverse_postorder,
    to_networkx,
)


class TestOrders:
    def test_rpo_starts_at_entry(self, loop, diamond, nested):
        for f in (loop, diamond, nested):
            assert reverse_postorder(f)[0] == "entry"

    def test_rpo_is_reversed_postorder(self, nested):
        assert reverse_postorder(nested) == list(reversed(postorder(nested)))

    def test_rpo_visits_each_reachable_block_once(self, nested):
        rpo = reverse_postorder(nested)
        assert len(rpo) == len(set(rpo)) == len(nested.blocks)

    def test_rpo_topological_on_acyclic(self, diamond):
        rpo = reverse_postorder(diamond)
        position = {name: i for i, name in enumerate(rpo)}
        for src, dst in edges(diamond):
            assert position[src] < position[dst]

    def test_linearize_matches_rpo(self, loop):
        assert linearize(loop) == reverse_postorder(loop)


class TestEdges:
    def test_edge_set(self, diamond):
        # join ends in ret, so it contributes no outgoing edges.
        assert set(edges(diamond)) == {
            ("entry", "small"),
            ("entry", "big"),
            ("small", "join"),
            ("big", "join"),
        }

    def test_back_edges_in_loop(self, loop):
        assert back_edges(loop) == {("body", "head")}

    def test_back_edges_nested(self, nested):
        assert back_edges(nested) == {("ibody", "ihead"), ("iexit", "ohead")}

    def test_no_back_edges_in_dag(self, diamond, straightline):
        assert back_edges(diamond) == set()
        assert back_edges(straightline) == set()


class TestReachability:
    def test_all_reachable(self, nested):
        assert reachable_blocks(nested) == set(nested.blocks)

    def test_networkx_agreement(self, nested):
        graph = to_networkx(nested)
        nx_reach = nx.descendants(graph, "entry") | {"entry"}
        assert reachable_blocks(nested) == nx_reach

    def test_deep_chain_does_not_recurse(self):
        # 5000-block chain: the iterative DFS must not hit recursion limits.
        lines = ["func @deep() {"]
        for i in range(5000):
            lines.append(f"b{i}:")
            lines.append(f"  jump b{i + 1}")
        lines.append("b5000:")
        lines.append("  ret")
        lines.append("}")
        f = parse_function("\n".join(lines))
        assert len(reverse_postorder(f)) == 5001
