"""Instruction construction rules, access sets, and mutation helpers."""

import pytest

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Constant, StackSlot, vreg


class TestConstruction:
    def test_binary_requires_two_operands(self):
        with pytest.raises(IRError):
            Instruction(Opcode.ADD, vreg("d"), (vreg("a"),))

    def test_binary_requires_destination(self):
        with pytest.raises(IRError):
            Instruction(Opcode.ADD, None, (vreg("a"), vreg("b")))

    def test_store_refuses_destination(self):
        with pytest.raises(IRError):
            Instruction(Opcode.STORE, vreg("d"), (vreg("a"), vreg("v")))

    def test_li_requires_constant(self):
        with pytest.raises(IRError):
            ins.Instruction(Opcode.LI, vreg("d"), (vreg("a"),))

    def test_jump_requires_one_target(self):
        with pytest.raises(IRError):
            Instruction(Opcode.JUMP, targets=())
        with pytest.raises(IRError):
            Instruction(Opcode.JUMP, targets=("a", "b"))

    def test_br_requires_two_targets(self):
        with pytest.raises(IRError):
            Instruction(Opcode.BR, None, (vreg("c"),), ("only",))

    def test_non_branch_refuses_targets(self):
        with pytest.raises(IRError):
            Instruction(Opcode.ADD, vreg("d"), (vreg("a"), vreg("b")), ("x",))

    def test_spill_requires_slot_operand(self):
        with pytest.raises(IRError):
            Instruction(Opcode.SPILL, None, (vreg("not_a_slot"), vreg("v")))

    def test_destination_must_be_register(self):
        with pytest.raises(IRError):
            Instruction(Opcode.ADD, Constant(1), (vreg("a"), vreg("b")))

    def test_ret_optional_operand(self):
        assert ins.ret().operands == []
        assert ins.ret(vreg("x")).operands == [vreg("x")]


class TestAccessSets:
    def test_uses_excludes_constants(self):
        inst = ins.binary(Opcode.ADD, vreg("d"), vreg("a"), Constant(1))
        assert inst.uses() == [vreg("a")]
        assert inst.defs() == [vreg("d")]

    def test_registers_preserves_duplicates(self):
        inst = ins.binary(Opcode.ADD, vreg("a"), vreg("a"), vreg("a"))
        # Two reads plus one write of the same register = three accesses.
        assert inst.registers() == [vreg("a"), vreg("a"), vreg("a")]

    def test_store_has_no_defs(self):
        inst = ins.store(vreg("addr"), vreg("v"))
        assert inst.defs() == []
        assert inst.uses() == [vreg("addr"), vreg("v")]

    def test_spill_uses_register_not_slot(self):
        inst = ins.spill(StackSlot("s"), vreg("v"))
        assert inst.uses() == [vreg("v")]

    def test_nop_accesses_nothing(self):
        assert ins.nop().registers() == []

    def test_iter_register_accesses(self):
        insts = [
            ins.binary(Opcode.ADD, vreg("c"), vreg("a"), vreg("b")),
            ins.copy_of(vreg("d"), vreg("c")),
        ]
        accesses = list(ins.iter_register_accesses(insts))
        assert accesses == [vreg("a"), vreg("b"), vreg("c"), vreg("c"), vreg("d")]


class TestMutation:
    def test_replace_uses_only(self):
        inst = ins.binary(Opcode.ADD, vreg("a"), vreg("a"), vreg("b"))
        inst.replace_uses({vreg("a"): vreg("x")})
        assert inst.operands == [vreg("x"), vreg("b")]
        assert inst.dest == vreg("a")

    def test_replace_defs_only(self):
        inst = ins.binary(Opcode.ADD, vreg("a"), vreg("a"), vreg("b"))
        inst.replace_defs({vreg("a"): vreg("x")})
        assert inst.dest == vreg("x")
        assert inst.operands == [vreg("a"), vreg("b")]

    def test_retarget(self):
        inst = ins.br(vreg("c"), "then", "else")
        inst.retarget("else", "other")
        assert inst.targets == ["then", "other"]

    def test_copy_is_independent(self):
        inst = ins.binary(Opcode.ADD, vreg("d"), vreg("a"), vreg("b"))
        clone = inst.copy()
        clone.replace_uses({vreg("a"): vreg("z")})
        assert inst.operands == [vreg("a"), vreg("b")]


class TestClassification:
    def test_terminators(self):
        assert ins.jump("x").is_terminator
        assert ins.br(vreg("c"), "a", "b").is_terminator
        assert ins.ret().is_terminator
        assert ins.halt().is_terminator
        assert not ins.nop().is_terminator

    def test_memory_ops(self):
        assert ins.load(vreg("d"), vreg("a")).touches_memory
        assert ins.store(vreg("a"), vreg("v")).touches_memory
        assert ins.spill(StackSlot("s"), vreg("v")).touches_memory
        assert not ins.nop().touches_memory
