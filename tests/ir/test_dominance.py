"""Dominance analysis cross-checked against networkx's implementation."""

import networkx as nx

from repro.ir import (
    dominance_frontier,
    dominator_tree_children,
    dominators,
    immediate_dominators,
    to_networkx,
)


class TestImmediateDominators:
    def test_entry_has_none(self, diamond):
        assert immediate_dominators(diamond)["entry"] is None

    def test_diamond(self, diamond):
        idom = immediate_dominators(diamond)
        assert idom["small"] == "entry"
        assert idom["big"] == "entry"
        assert idom["join"] == "entry"  # neither arm dominates the join

    def test_loop(self, loop):
        idom = immediate_dominators(loop)
        assert idom["head"] == "entry"
        assert idom["body"] == "head"
        assert idom["exit"] == "head"

    def test_matches_networkx(self, loop, diamond, nested):
        for f in (loop, diamond, nested):
            ours = immediate_dominators(f)
            reference = nx.immediate_dominators(to_networkx(f), "entry")
            for name, parent in ours.items():
                if parent is None:
                    # networkx ≥3.6 omits the start node; older versions
                    # map it to itself.  Accept both.
                    assert reference.get(name, name) == name
                else:
                    assert reference[name] == parent


class TestDominatorSets:
    def test_every_block_dominates_itself(self, nested):
        for name, doms in dominators(nested).items():
            assert name in doms

    def test_entry_dominates_everything(self, nested):
        for doms in dominators(nested).values():
            assert "entry" in doms

    def test_loop_body_dominated_by_header(self, loop):
        assert "head" in dominators(loop)["body"]


class TestTreeAndFrontier:
    def test_tree_children_inverse_of_idom(self, nested):
        idom = immediate_dominators(nested)
        children = dominator_tree_children(nested)
        for name, parent in idom.items():
            if parent is not None:
                assert name in children[parent]

    def test_diamond_frontier(self, diamond):
        frontier = dominance_frontier(diamond)
        assert frontier["small"] == {"join"}
        assert frontier["big"] == {"join"}
        assert frontier["join"] == set()

    def test_loop_frontier_contains_header(self, loop):
        frontier = dominance_frontier(loop)
        # body's frontier is the loop header (the join of the back edge).
        assert "head" in frontier["body"]
