"""Parser/printer round trips and parse error reporting."""

import pytest

from repro.errors import ParseError
from repro.ir import (
    parse_function,
    parse_instruction,
    parse_module,
    print_function,
    print_instruction,
)
from repro.ir.values import Constant, PhysicalRegister, StackSlot, vreg
from tests.conftest import DIAMOND_SRC, LOOP_SRC, NESTED_SRC, STRAIGHTLINE_SRC


class TestRoundTrip:
    @pytest.mark.parametrize(
        "src", [STRAIGHTLINE_SRC, LOOP_SRC, DIAMOND_SRC, NESTED_SRC]
    )
    def test_print_parse_fixed_point(self, src):
        f = parse_function(src)
        once = print_function(f)
        twice = print_function(parse_function(once))
        assert once == twice

    def test_physical_registers_round_trip(self):
        inst = parse_instruction("r1 = add r2, r3")
        assert inst.dest == PhysicalRegister(1)
        assert print_instruction(inst) == "r1 = add r2, r3"

    def test_stack_slots_round_trip(self):
        inst = parse_instruction("spill @s0, %v")
        assert inst.operands[0] == StackSlot("s0")
        assert print_instruction(inst) == "spill @s0, %v"

    def test_negative_constant(self):
        inst = parse_instruction("%d = li -42")
        assert inst.operands[0] == Constant(-42)

    def test_comments_and_blanks_ignored(self):
        src = """
        # leading comment
        func @f() {
        entry:  # trailing comment
          %a = li 1

          ret %a
        }
        """
        f = parse_function(src)
        assert f.instruction_count() == 2


class TestInstructionForms:
    def test_branch(self):
        inst = parse_instruction("br %c, yes, no")
        assert inst.operands == [vreg("c")]
        assert inst.targets == ["yes", "no"]

    def test_jump(self):
        assert parse_instruction("jump out").targets == ["out"]

    def test_ret_void(self):
        assert parse_instruction("ret").operands == []

    def test_nop(self):
        assert parse_instruction("nop").registers() == []

    def test_store_two_operands(self):
        inst = parse_instruction("store %addr, %v")
        assert len(inst.operands) == 2


class TestErrors:
    def test_unknown_opcode_reports_line(self):
        with pytest.raises(ParseError) as err:
            parse_module("func @f() {\nentry:\n  %a = frobnicate %b\n}\n")
        assert err.value.line == 3

    def test_missing_close_brace(self):
        with pytest.raises(ParseError):
            parse_module("func @f() {\nentry:\n  ret\n")

    def test_instruction_outside_function(self):
        with pytest.raises(ParseError):
            parse_module("%a = li 1\n")

    def test_instruction_before_label(self):
        with pytest.raises(ParseError):
            parse_module("func @f() {\n  %a = li 1\n}\n")

    def test_bad_operand(self):
        with pytest.raises(ParseError):
            parse_instruction("%a = add %b, $$$")

    def test_jump_to_value_rejected(self):
        with pytest.raises(ParseError):
            parse_instruction("jump %reg")

    def test_parse_function_requires_exactly_one(self):
        two = "func @a() {\nentry:\n  ret\n}\nfunc @b() {\nentry:\n  ret\n}\n"
        with pytest.raises(ParseError):
            parse_function(two)
        assert len(list(parse_module(two))) == 2

    def test_non_vreg_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_module("func @f(r1) {\nentry:\n  ret\n}\n")
