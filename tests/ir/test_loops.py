"""Natural loop discovery and nesting."""

from repro.ir import LoopInfo, parse_function


class TestSimpleLoop:
    def test_one_loop_found(self, loop):
        info = LoopInfo(loop)
        assert len(info.loops) == 1
        assert info.loops[0].header == "head"
        assert info.loops[0].body == {"head", "body"}
        assert info.loops[0].latches == {"body"}

    def test_depths(self, loop):
        info = LoopInfo(loop)
        assert info.depth("head") == 1
        assert info.depth("body") == 1
        assert info.depth("entry") == 0
        assert info.depth("exit") == 0


class TestNestedLoops:
    def test_two_loops(self, nested):
        info = LoopInfo(nested)
        headers = {l.header for l in info.loops}
        assert headers == {"ohead", "ihead"}

    def test_nesting_parent(self, nested):
        info = LoopInfo(nested)
        inner = next(l for l in info.loops if l.header == "ihead")
        outer = next(l for l in info.loops if l.header == "ohead")
        assert inner.parent is outer
        assert outer.parent is None
        assert inner.depth == 2
        assert outer.depth == 1

    def test_depth_lookup(self, nested):
        info = LoopInfo(nested)
        assert info.depth("ibody") == 2
        assert info.depth("oinit") == 1
        assert info.depth("entry") == 0

    def test_innermost(self, nested):
        info = LoopInfo(nested)
        assert info.innermost("ibody").header == "ihead"
        assert info.innermost("oinit").header == "ohead"
        assert info.innermost("entry") is None


class TestSharedHeader:
    def test_two_latches_merge_into_one_loop(self):
        src = """
        func @f(%n) {
        entry:
          jump head
        head:
          %c = cmplt %n, 10
          br %c, a, b
        a:
          jump head
        b:
          %d = cmplt %n, 20
          br %d, head, out
        out:
          ret
        }
        """
        info = LoopInfo(parse_function(src))
        assert len(info.loops) == 1
        assert info.loops[0].latches == {"a", "b"}
        assert info.loops[0].body == {"head", "a", "b"}


class TestNoLoops:
    def test_dag_has_none(self, diamond, straightline):
        assert LoopInfo(diamond).loops == []
        assert LoopInfo(straightline).loops == []
        assert LoopInfo(diamond).headers() == set()
