"""Value semantics: equality by name/index, register classification."""

import pytest

from repro.ir.values import (
    Constant,
    PhysicalRegister,
    StackSlot,
    VirtualRegister,
    const,
    preg,
    vreg,
)


class TestEquality:
    def test_virtual_registers_equal_by_name(self):
        assert VirtualRegister("a") == VirtualRegister("a")
        assert VirtualRegister("a") != VirtualRegister("b")

    def test_physical_registers_equal_by_index(self):
        assert PhysicalRegister(3) == PhysicalRegister(3)
        assert PhysicalRegister(3) != PhysicalRegister(4)

    def test_constants_equal_by_value(self):
        assert Constant(7) == Constant(7)
        assert Constant(7) != Constant(8)

    def test_different_kinds_never_equal(self):
        assert VirtualRegister("3") != PhysicalRegister(3)
        assert Constant(0) != StackSlot("0")

    def test_values_usable_in_sets(self):
        regs = {vreg("a"), vreg("a"), vreg("b"), preg(0), preg(0)}
        assert len(regs) == 3


class TestClassification:
    def test_registers_flagged(self):
        assert vreg("x").is_register
        assert preg(1).is_register

    def test_non_registers_not_flagged(self):
        assert not const(5).is_register
        assert not StackSlot("s").is_register


class TestRendering:
    def test_textual_forms(self):
        assert str(vreg("abc")) == "%abc"
        assert str(preg(12)) == "r12"
        assert str(const(-4)) == "-4"
        assert str(StackSlot("sp0")) == "@sp0"

    def test_shorthand_constructors(self):
        assert vreg("v") == VirtualRegister("v")
        assert preg(2) == PhysicalRegister(2)
        assert const(9) == Constant(9)
