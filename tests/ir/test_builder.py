"""FunctionBuilder: emission, structured loops, verification on build."""

import pytest

from repro.errors import IRError
from repro.ir import Opcode, verify_function
from repro.ir.builder import FunctionBuilder
from repro.sim import Interpreter


class TestEmission:
    def test_simple_expression(self):
        b = FunctionBuilder("f", params=["x"])
        b.block("entry")
        t = b.add(b.param("x"), b.param("x"))
        b.ret(t)
        f = b.build()
        assert f.instruction_count() == 2

    def test_emit_without_block_rejected(self):
        b = FunctionBuilder("f")
        with pytest.raises(IRError):
            b.li(1)

    def test_unknown_param_rejected(self):
        b = FunctionBuilder("f", params=["x"])
        with pytest.raises(IRError):
            b.param("y")

    def test_fresh_names_unique(self):
        b = FunctionBuilder("f")
        b.block("entry")
        names = {b.fresh().name for _ in range(50)}
        assert len(names) == 50

    def test_dest_override(self):
        b = FunctionBuilder("f", params=["x"])
        b.block("entry")
        acc = b.li(0)
        out = b.add(acc, b.param("x"), dest=acc)
        assert out == acc

    def test_all_binary_helpers_emit_correct_opcodes(self):
        b = FunctionBuilder("f", params=["x", "y"])
        b.block("entry")
        x, y = b.param("x"), b.param("y")
        helpers = {
            Opcode.ADD: b.add, Opcode.SUB: b.sub, Opcode.MUL: b.mul,
            Opcode.DIV: b.div, Opcode.REM: b.rem, Opcode.AND: b.and_,
            Opcode.OR: b.or_, Opcode.XOR: b.xor, Opcode.SHL: b.shl,
            Opcode.SHR: b.shr, Opcode.CMPEQ: b.cmpeq, Opcode.CMPNE: b.cmpne,
            Opcode.CMPLT: b.cmplt, Opcode.CMPLE: b.cmple,
            Opcode.CMPGT: b.cmpgt, Opcode.CMPGE: b.cmpge,
        }
        for opcode, helper in helpers.items():
            helper(x, y)
        b.ret()
        emitted = [i.opcode for i in b.function.entry.instructions[:-1]]
        assert emitted == list(helpers)


class TestStructuredLoops:
    def test_counted_loop_executes_correctly(self):
        b = FunctionBuilder("sum", params=["n"])
        b.block("entry")
        acc = b.li(0)
        i, _body, _exit = b.counted_loop("l", 0, b.param("n"))
        b.add(acc, i, dest=acc)
        b.close_loop()
        b.ret(acc)
        f = b.build()
        result = Interpreter().run(f, args=[10])
        assert result.return_value == sum(range(10))

    def test_nested_loops(self):
        b = FunctionBuilder("prodsum", params=["n"])
        b.block("entry")
        acc = b.li(0)
        i, _b1, _e1 = b.counted_loop("i", 0, b.param("n"))
        j, _b2, _e2 = b.counted_loop("j", 0, b.param("n"))
        p = b.mul(i, j)
        b.add(acc, p, dest=acc)
        b.close_loop()
        b.close_loop()
        b.ret(acc)
        result = Interpreter().run(b.build(), args=[5])
        expected = sum(i * j for i in range(5) for j in range(5))
        assert result.return_value == expected

    def test_close_without_open_rejected(self):
        b = FunctionBuilder("f")
        b.block("entry")
        with pytest.raises(IRError):
            b.close_loop()

    def test_loop_with_step(self):
        b = FunctionBuilder("evens")
        b.block("entry")
        acc = b.li(0)
        limit = b.li(10)
        i, _body, _exit = b.counted_loop("l", 0, limit, step=2)
        b.add(acc, i, dest=acc)
        b.close_loop()
        b.ret(acc)
        result = Interpreter().run(b.build())
        assert result.return_value == sum(range(0, 10, 2))


class TestBuild:
    def test_build_verifies_by_default(self):
        b = FunctionBuilder("broken")
        b.block("entry")
        b.li(1)  # no terminator
        with pytest.raises(Exception):
            b.build()

    def test_build_can_skip_verification(self):
        b = FunctionBuilder("broken")
        b.block("entry")
        b.li(1)
        f = b.build(verify=False)
        assert f.instruction_count() == 1

    def test_built_functions_always_verify(self, machine):
        from repro.workloads import full_suite

        for wl in full_suite():
            verify_function(wl.function)
