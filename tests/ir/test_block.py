"""Basic block invariants: termination, insertion, body replacement."""

import pytest

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.block import BasicBlock
from repro.ir.values import vreg


def make_block():
    block = BasicBlock("b")
    block.append(ins.li(vreg("a"), 1))
    block.append(ins.li(vreg("b"), 2))
    block.append(ins.jump("next"))
    return block


class TestTermination:
    def test_terminator_is_last(self):
        block = make_block()
        assert block.terminator is block.instructions[-1]

    def test_append_past_terminator_rejected(self):
        block = make_block()
        with pytest.raises(IRError):
            block.append(ins.nop())

    def test_unterminated_block_has_no_terminator(self):
        block = BasicBlock("b")
        block.append(ins.nop())
        assert block.terminator is None

    def test_body_excludes_terminator(self):
        block = make_block()
        assert len(block.body) == 2
        assert all(not i.is_terminator for i in block.body)

    def test_successors(self):
        assert make_block().successors() == ["next"]
        cond = BasicBlock("c")
        cond.append(ins.br(vreg("x"), "t", "f"))
        assert cond.successors() == ["t", "f"]


class TestMutation:
    def test_insert_before_terminator(self):
        block = make_block()
        marker = ins.nop()
        block.insert_before_terminator(marker)
        assert block.instructions[-2] is marker
        assert block.terminator.opcode.value == "jump"

    def test_insert_terminator_mid_block_rejected(self):
        block = make_block()
        with pytest.raises(IRError):
            block.insert(0, ins.ret())

    def test_remove_by_identity(self):
        block = make_block()
        victim = block.instructions[0]
        block.remove(victim)
        assert victim not in block.instructions

    def test_remove_missing_raises(self):
        block = make_block()
        with pytest.raises(IRError):
            block.remove(ins.nop())

    def test_replace_body_keeps_terminator(self):
        block = make_block()
        block.replace_body([ins.nop()])
        assert len(block) == 2
        assert block.terminator.opcode.value == "jump"

    def test_copy_deep(self):
        block = make_block()
        clone = block.copy()
        clone.instructions[0].replace_defs({vreg("a"): vreg("z")})
        assert block.instructions[0].dest == vreg("a")


class TestValidation:
    def test_invalid_name_rejected(self):
        with pytest.raises(IRError):
            BasicBlock("bad name")
        with pytest.raises(IRError):
            BasicBlock("")
