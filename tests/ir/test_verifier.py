"""Verifier: every structural invariant has a failing case."""

import pytest

from repro.errors import VerificationError
from repro.ir import instructions as ins
from repro.ir import parse_function, verify_function
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.values import preg, vreg


def test_valid_functions_pass(straightline, loop, diamond, nested):
    for f in (straightline, loop, diamond, nested):
        verify_function(f)


def test_unterminated_block():
    f = Function("f")
    block = f.add_block("entry")
    block.append(ins.li(vreg("a"), 1))
    with pytest.raises(VerificationError, match="not terminated"):
        verify_function(f)


def test_terminator_not_last():
    f = Function("f")
    block = f.add_block("entry")
    block.instructions = [ins.ret(), ins.nop(), ins.ret()]
    with pytest.raises(VerificationError, match="not last"):
        verify_function(f)


def test_unknown_branch_target():
    f = Function("f")
    block = f.add_block("entry")
    block.append(ins.jump("ghost"))
    with pytest.raises(VerificationError, match="unknown branch target"):
        verify_function(f)


def test_unreachable_block():
    f = Function("f")
    f.add_block("entry").append(ins.ret())
    f.add_block("island").append(ins.ret())
    with pytest.raises(VerificationError, match="unreachable"):
        verify_function(f)


def test_use_before_def():
    src = """
    func @f() {
    entry:
      %b = add %a, %a
      ret %b
    }
    """
    with pytest.raises(VerificationError, match="used before assignment"):
        verify_function(parse_function(src))


def test_use_defined_on_only_one_path():
    src = """
    func @f(%x) {
    entry:
      br %x, defs, skips
    defs:
      %v = li 1
      jump join
    skips:
      jump join
    join:
      %w = add %v, %v
      ret %w
    }
    """
    with pytest.raises(VerificationError, match="used before assignment"):
        verify_function(parse_function(src))


def test_params_count_as_defined(straightline):
    verify_function(straightline)  # %a, %b are params


def test_loop_carried_use_is_fine(loop):
    verify_function(loop)  # %acc defined in entry, used in body via head


def test_mixed_registers_flagged_when_disallowed():
    f = Function("f")
    block = f.add_block("entry")
    block.append(ins.li(vreg("a"), 1))
    block.append(ins.binary(ins.Opcode.ADD, preg(0), vreg("a"), vreg("a")))
    block.append(ins.ret())
    verify_function(f)  # allowed by default
    with pytest.raises(VerificationError, match="mixes"):
        verify_function(f, allow_mixed_registers=False)


def test_empty_function_rejected():
    with pytest.raises(VerificationError, match="no blocks"):
        verify_function(Function("empty"))
