"""Function container behaviour: blocks, fresh names, copies, CFG maps."""

import pytest

from repro.errors import IRError
from repro.ir import instructions as ins
from repro.ir.block import BasicBlock
from repro.ir.function import Function, Module
from repro.ir.values import vreg


class TestBlocks:
    def test_first_block_becomes_entry(self, loop):
        assert loop.entry.name == "entry"

    def test_duplicate_block_rejected(self):
        f = Function("f")
        f.add_block("a")
        with pytest.raises(IRError):
            f.add_block("a")

    def test_missing_block_lookup(self, loop):
        with pytest.raises(IRError):
            loop.block("nope")

    def test_entry_removal_rejected(self, loop):
        with pytest.raises(IRError):
            loop.remove_block("entry")

    def test_set_entry(self):
        f = Function("f")
        f.add_block("a")
        f.add_block("b")
        f.set_entry("b")
        assert f.entry.name == "b"


class TestFreshNames:
    def test_new_vreg_avoids_existing(self, loop):
        for _ in range(20):
            reg = loop.new_vreg()
            assert reg not in loop.virtual_registers() or reg.name.startswith("t")
        names = {loop.new_vreg().name for _ in range(10)}
        assert len(names) == 10

    def test_new_vreg_avoids_parsed_names(self, loop):
        # %acc exists in the parsed function; 'acc' hints must not collide.
        seen = {v.name for v in loop.virtual_registers()}
        fresh = loop.new_vreg("acc")
        assert fresh.name not in seen

    def test_new_slot_unique(self, loop):
        slots = {loop.new_slot().name for _ in range(5)}
        assert len(slots) == 5

    def test_new_block_name(self, loop):
        assert loop.new_block_name("entry") != "entry"
        assert loop.new_block_name("fresh") == "fresh"


class TestIteration:
    def test_instruction_count(self, loop):
        assert loop.instruction_count() == sum(
            len(b) for b in loop.blocks.values()
        )

    def test_virtual_registers_includes_params(self, loop):
        assert vreg("n") in loop.virtual_registers()

    def test_predecessors_map(self, loop):
        preds = loop.predecessors_map()
        assert set(preds["head"]) == {"entry", "body"}
        assert preds["entry"] == []

    def test_predecessors_rejects_dangling_target(self):
        f = Function("f")
        b = f.add_block("entry")
        b.append(ins.jump("nowhere"))
        with pytest.raises(IRError):
            f.predecessors_map()

    def test_successors(self, loop):
        succ_names = [b.name for b in loop.successors("head")]
        assert succ_names == ["body", "exit"]


class TestCopy:
    def test_copy_is_deep(self, loop):
        clone = loop.copy()
        clone.block("body").instructions[0].replace_defs(
            {vreg("sq"): vreg("zz")}
        )
        assert loop.block("body").instructions[0].dest == vreg("sq")

    def test_copy_preserves_entry(self, diamond):
        assert diamond.copy().entry.name == diamond.entry.name


class TestModule:
    def test_module_add_and_lookup(self, loop):
        mod = Module("m")
        mod.add_function(loop)
        assert mod.function("loop") is loop

    def test_duplicate_function_rejected(self, loop):
        mod = Module("m")
        mod.add_function(loop)
        with pytest.raises(IRError):
            mod.add_function(loop.copy())

    def test_missing_function(self):
        with pytest.raises(IRError):
            Module("m").function("ghost")
