"""Spill code insertion in isolation."""

import pytest

from repro.errors import AllocationError
from repro.ir import Opcode, parse_function, verify_function
from repro.ir.values import PhysicalRegister, vreg
from repro.regalloc import insert_spill_code, spill_cost
from repro.sim import Interpreter


class TestSpillInsertion:
    def test_spilled_register_leaves_long_lifetimes(self, loop):
        spilled = insert_spill_code(loop, {vreg("acc")})
        verify_function(spilled)
        # %acc itself no longer appears as a direct operand anywhere
        # except nowhere: every use goes through a reload temp.
        for inst in spilled.instructions():
            if inst.opcode not in (Opcode.SPILL, Opcode.RELOAD):
                assert vreg("acc") not in inst.uses()
                assert vreg("acc") not in inst.defs()

    def test_semantics_preserved(self, loop):
        spilled = insert_spill_code(loop, {vreg("acc"), vreg("i")})
        verify_function(spilled)
        interp = Interpreter()
        assert (
            interp.run(spilled, args=[10]).return_value
            == interp.run(loop, args=[10]).return_value
        )

    def test_param_spill_stores_on_entry(self, straightline):
        spilled = insert_spill_code(straightline, {vreg("a")})
        first = spilled.entry.instructions[0]
        assert first.opcode is Opcode.SPILL
        interp = Interpreter()
        assert (
            interp.run(spilled, args=[6, 7]).return_value
            == interp.run(straightline, args=[6, 7]).return_value
        )

    def test_empty_spill_set_copies(self, loop):
        clone = insert_spill_code(loop, set())
        assert str(clone) == str(loop)
        assert clone is not loop

    def test_instruction_count_grows(self, loop):
        spilled = insert_spill_code(loop, {vreg("acc")})
        assert spilled.instruction_count() > loop.instruction_count()

    def test_physical_register_rejected(self, loop):
        with pytest.raises(AllocationError):
            insert_spill_code(loop, {PhysicalRegister(0)})

    def test_repeated_use_in_one_instruction_single_reload(self):
        src = """
        func @f(%x) {
        entry:
          %y = mul %x, %x
          ret %y
        }
        """
        f = parse_function(src)
        spilled = insert_spill_code(f, {vreg("x")})
        reloads = [
            i for i in spilled.instructions() if i.opcode is Opcode.RELOAD
        ]
        assert len(reloads) == 1  # both operands share one reload
        assert Interpreter().run(spilled, args=[9]).return_value == 81


class TestSpillCost:
    def test_high_weight_costly(self):
        assert spill_cost(1000.0, 10, 3) > spill_cost(1.0, 10, 3)

    def test_high_degree_cheap(self):
        assert spill_cost(10.0, 10, 20) < spill_cost(10.0, 10, 1)

    def test_long_interval_cheap(self):
        assert spill_cost(10.0, 100, 3) < spill_cost(10.0, 2, 3)
