"""Graph-coloring allocation: correctness, coloring validity, spilling."""

import pytest

from repro.ir import verify_function
from repro.regalloc import (
    allocate_graph_coloring,
    build_interference_graph,
    default_policies,
)
from repro.sim import Interpreter
from repro.workloads import load, small_suite


class TestCorrectness:
    @pytest.mark.parametrize("policy", default_policies(), ids=lambda p: p.name)
    def test_semantics_preserved_under_every_policy(self, machine, policy):
        wl = load("iir")
        allocation = allocate_graph_coloring(wl.function, machine, policy)
        verify_function(allocation.function, allow_mixed_registers=False)
        result = Interpreter().run(
            allocation.function, args=wl.args, memory=dict(wl.memory)
        )
        assert result.return_value == wl.expected_return

    def test_coloring_is_proper(self, machine, nested):
        allocation = allocate_graph_coloring(nested, machine)
        graph = build_interference_graph(nested)
        for a in allocation.mapping:
            for b in allocation.mapping:
                if a != b and graph.interferes(a, b):
                    assert allocation.mapping[a] != allocation.mapping[b]

    def test_uses_fewer_or_equal_colors_than_linear_scan(self, machine, nested):
        from repro.regalloc import allocate_linear_scan

        gc = allocate_graph_coloring(nested, machine)
        ls = allocate_linear_scan(nested, machine)
        # Chaitin-Briggs should never need more colours than linear scan
        # for these small reducible programs.
        assert len(gc.registers_used()) <= len(ls.registers_used())


class TestSpilling:
    def test_spills_when_pressure_exceeds_k(self, tiny_machine):
        wl = load("fir")
        allocation = allocate_graph_coloring(wl.function, tiny_machine)
        assert allocation.spill_count > 0
        verify_function(allocation.function, allow_mixed_registers=False)
        result = Interpreter().run(
            allocation.function, args=wl.args, memory=dict(wl.memory)
        )
        assert result.return_value == wl.expected_return

    def test_suite_on_small_machine(self, small_machine):
        for wl in small_suite():
            allocation = allocate_graph_coloring(wl.function, small_machine)
            result = Interpreter().run(
                allocation.function, args=wl.args, memory=dict(wl.memory)
            )
            assert result.return_value == wl.expected_return, wl.name


class TestMetadata:
    def test_allocator_name(self, machine, loop):
        allocation = allocate_graph_coloring(loop, machine)
        assert allocation.allocator == "graph-coloring"
