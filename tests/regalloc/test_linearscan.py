"""Linear scan allocation: correctness under every policy, spilling."""

import pytest

from repro.arch import MachineDescription, RegisterFileGeometry
from repro.ir import verify_function
from repro.ir.values import PhysicalRegister
from repro.regalloc import (
    allocate_linear_scan,
    build_interference_graph,
    default_policies,
)
from repro.sim import Interpreter
from repro.workloads import load, small_suite


def run_both(workload, allocation):
    interp = Interpreter()
    before = interp.run(
        workload.function, args=workload.args, memory=dict(workload.memory)
    )
    after = interp.run(
        allocation.function, args=workload.args, memory=dict(workload.memory)
    )
    return before, after


class TestCorrectness:
    @pytest.mark.parametrize("policy", default_policies(), ids=lambda p: p.name)
    def test_semantics_preserved_under_every_policy(self, machine, policy):
        wl = load("fir")
        allocation = allocate_linear_scan(wl.function, machine, policy)
        verify_function(allocation.function, allow_mixed_registers=False)
        before, after = run_both(wl, allocation)
        assert after.return_value == before.return_value == wl.expected_return

    def test_whole_suite_first_free(self, machine):
        for wl in small_suite():
            allocation = allocate_linear_scan(wl.function, machine)
            _before, after = run_both(wl, allocation)
            assert after.return_value == wl.expected_return, wl.name

    def test_assignment_respects_interference(self, machine, loop):
        allocation = allocate_linear_scan(loop, machine)
        graph = build_interference_graph(loop)
        for a in allocation.mapping:
            for b in allocation.mapping:
                if a != b and graph.interferes(a, b):
                    assert allocation.mapping[a] != allocation.mapping[b]

    def test_no_virtual_registers_remain(self, machine, loop):
        allocation = allocate_linear_scan(loop, machine)
        for inst in allocation.function.instructions():
            for reg in inst.registers():
                assert isinstance(reg, PhysicalRegister)


class TestSpilling:
    def test_spills_on_tiny_machine(self, tiny_machine):
        wl = load("fir")  # needs ~10 registers
        allocation = allocate_linear_scan(wl.function, tiny_machine)
        assert allocation.spill_count > 0
        assert allocation.rounds > 1
        verify_function(allocation.function, allow_mixed_registers=False)
        _before, after = run_both(wl, allocation)
        assert after.return_value == wl.expected_return

    def test_spill_preserves_whole_suite(self, small_machine):
        for wl in small_suite():
            allocation = allocate_linear_scan(wl.function, small_machine)
            _before, after = run_both(wl, allocation)
            assert after.return_value == wl.expected_return, wl.name

    def test_no_spill_on_large_machine(self, machine, loop):
        allocation = allocate_linear_scan(loop, machine)
        assert allocation.spill_count == 0
        assert allocation.rounds == 1


class TestResultMetadata:
    def test_names_recorded(self, machine, loop):
        from repro.regalloc import ChessboardPolicy

        allocation = allocate_linear_scan(loop, machine, ChessboardPolicy())
        assert allocation.policy == "chessboard"
        assert allocation.allocator == "linear-scan"

    def test_registers_used(self, machine, loop):
        allocation = allocate_linear_scan(loop, machine)
        used = allocation.registers_used()
        assert used == set(allocation.mapping.values())
        assert len(used) <= 64

    def test_original_untouched(self, machine, loop):
        snapshot = str(loop)
        allocate_linear_scan(loop, machine)
        assert str(loop) == snapshot
