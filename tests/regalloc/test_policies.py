"""Assignment policies — the Fig. 1 decision procedures."""

import pytest

from repro.arch import rf64
from repro.errors import AllocationError
from repro.ir.values import vreg
from repro.regalloc import (
    AssignmentContext,
    ChessboardPolicy,
    CoolestFirstPolicy,
    FarthestFirstPolicy,
    FirstFreePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    default_policies,
    policy_by_name,
)


@pytest.fixture
def machine():
    return rf64()


def ctx(machine, live=None, weight=1.0):
    return AssignmentContext(
        vreg=vreg("v"),
        weighted_accesses=weight,
        machine=machine,
        live_assignments=live or {},
    )


class TestFirstFree:
    def test_always_lowest(self, machine):
        policy = FirstFreePolicy()
        assert policy.choose([5, 2, 9], ctx(machine)) == 5  # list is given sorted
        assert policy.choose(list(range(64)), ctx(machine)) == 0

    def test_empty_free_list_raises(self, machine):
        with pytest.raises(AllocationError):
            FirstFreePolicy().choose([], ctx(machine))


class TestRandom:
    def test_deterministic_under_seed(self, machine):
        a = RandomPolicy(seed=7)
        b = RandomPolicy(seed=7)
        free = list(range(64))
        seq_a = [a.choose(free, ctx(machine)) for _ in range(20)]
        seq_b = [b.choose(free, ctx(machine)) for _ in range(20)]
        assert seq_a == seq_b

    def test_reset_restarts_sequence(self, machine):
        policy = RandomPolicy(seed=3)
        free = list(range(64))
        first = [policy.choose(free, ctx(machine)) for _ in range(10)]
        policy.reset(machine)
        second = [policy.choose(free, ctx(machine)) for _ in range(10)]
        assert first == second

    def test_spreads_over_many_draws(self, machine):
        policy = RandomPolicy(seed=0)
        free = list(range(64))
        chosen = {policy.choose(free, ctx(machine)) for _ in range(200)}
        assert len(chosen) > 30  # roughly uniform coverage


class TestChessboard:
    def test_prefers_color_class(self, machine):
        policy = ChessboardPolicy(color=0)
        geometry = machine.geometry
        chosen = policy.choose(list(range(64)), ctx(machine))
        assert geometry.chessboard_color(chosen) == 0

    def test_falls_back_under_pressure(self, machine):
        """The §2 caveat: once the preferred colour is gone, use the other."""
        policy = ChessboardPolicy(color=0)
        geometry = machine.geometry
        only_color1 = [r for r in range(64) if geometry.chessboard_color(r) == 1]
        chosen = policy.choose(only_color1, ctx(machine))
        assert geometry.chessboard_color(chosen) == 1

    def test_invalid_color(self):
        with pytest.raises(AllocationError):
            ChessboardPolicy(color=2)


class TestRoundRobin:
    def test_cycles_through_registers(self, machine):
        policy = RoundRobinPolicy()
        policy.reset(machine)
        free = list(range(64))
        seq = [policy.choose(free, ctx(machine)) for _ in range(6)]
        assert seq == [0, 1, 2, 3, 4, 5]

    def test_skips_taken(self, machine):
        policy = RoundRobinPolicy()
        policy.reset(machine)
        assert policy.choose([0, 1, 2], ctx(machine)) == 0
        assert policy.choose([5, 9], ctx(machine)) == 5
        assert policy.choose([2, 9], ctx(machine)) == 9

    def test_wraps_around(self, machine):
        policy = RoundRobinPolicy()
        policy.reset(machine)
        policy._cursor = 63
        assert policy.choose([63], ctx(machine)) == 63
        assert policy.choose([0, 1], ctx(machine)) == 0


class TestFarthestFirst:
    def test_first_pick_near_centre(self, machine):
        policy = FarthestFirstPolicy()
        chosen = policy.choose(list(range(64)), ctx(machine))
        row, col = machine.geometry.position(chosen)
        assert 2 <= row <= 5 and 2 <= col <= 5

    def test_second_pick_far_from_first(self, machine):
        policy = FarthestFirstPolicy()
        live = {vreg("a"): 0}  # corner occupied
        chosen = policy.choose(list(range(1, 64)), ctx(machine, live=live))
        assert machine.geometry.manhattan_distance(chosen, 0) >= 10

    def test_maximizes_min_distance(self, machine):
        policy = FarthestFirstPolicy()
        live = {vreg("a"): 0, vreg("b"): 63}  # opposite corners
        chosen = policy.choose(
            [r for r in range(64) if r not in (0, 63)], ctx(machine, live=live)
        )
        dist = min(
            machine.geometry.manhattan_distance(chosen, 0),
            machine.geometry.manhattan_distance(chosen, 63),
        )
        assert dist >= 6  # roughly equidistant


class TestCoolestFirst:
    def test_avoids_loaded_neighbourhood(self, machine):
        policy = CoolestFirstPolicy()
        policy.reset(machine)
        # Load up register 0's neighbourhood heavily.
        for _ in range(5):
            chosen = policy.choose([0], ctx(machine, weight=100.0))
            assert chosen == 0
        far = policy.choose([1, 63], ctx(machine, weight=1.0))
        assert far == 63

    def test_balances_over_sequence(self, machine):
        policy = CoolestFirstPolicy()
        policy.reset(machine)
        free = list(range(64))
        picks = [policy.choose(free, ctx(machine, weight=10.0)) for _ in range(16)]
        assert len(set(picks)) == 16  # never doubles up while space remains


class TestRegistry:
    def test_default_policies_unique_names(self):
        names = [p.name for p in default_policies()]
        assert len(names) == len(set(names)) == 6

    def test_lookup_by_name(self):
        assert policy_by_name("chessboard").name == "chessboard"
        with pytest.raises(AllocationError):
            policy_by_name("nonexistent")
