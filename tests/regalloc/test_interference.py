"""Interference graph construction."""

import pytest

from repro.ir import parse_function
from repro.ir.values import vreg
from repro.regalloc import build_interference_graph


class TestBasicInterference:
    def test_overlapping_lifetimes_interfere(self, loop):
        graph = build_interference_graph(loop)
        assert graph.interferes(vreg("acc"), vreg("i"))
        assert graph.interferes(vreg("n"), vreg("acc"))
        assert graph.interferes(vreg("n"), vreg("i"))

    def test_symmetry(self, loop):
        graph = build_interference_graph(loop)
        for a in graph.nodes:
            for b in graph.neighbors(a):
                assert graph.interferes(b, a)

    def test_no_self_interference(self, loop):
        graph = build_interference_graph(loop)
        for reg in graph.nodes:
            assert not graph.interferes(reg, reg)

    def test_disjoint_lifetimes_do_not_interfere(self):
        src = """
        func @f() {
        entry:
          %a = li 1
          %b = add %a, %a
          %c = li 2
          %d = add %c, %c
          ret %d
        }
        """
        graph = build_interference_graph(parse_function(src))
        assert not graph.interferes(vreg("a"), vreg("c"))
        assert not graph.interferes(vreg("b"), vreg("d"))

    def test_params_mutually_interfere(self, straightline):
        graph = build_interference_graph(straightline)
        assert graph.interferes(vreg("a"), vreg("b"))


class TestCopySpecialCase:
    def test_copy_source_dest_do_not_interfere_through_copy(self):
        src = """
        func @f(%x) {
        entry:
          %y = copy %x
          ret %y
        }
        """
        graph = build_interference_graph(parse_function(src))
        assert not graph.interferes(vreg("x"), vreg("y"))

    def test_copy_value_may_share_until_redefinition(self):
        # While neither is redefined, x and y hold the same value, so
        # sharing a register is safe (copy coalescing) — no interference.
        src = """
        func @f(%x) {
        entry:
          %y = copy %x
          %z = add %y, %x
          ret %z
        }
        """
        graph = build_interference_graph(parse_function(src))
        assert not graph.interferes(vreg("x"), vreg("y"))

    def test_copy_source_redefined_forces_interference(self):
        src = """
        func @f(%x) {
        entry:
          %y = copy %x
          %x = li 0
          %z = add %y, %x
          ret %z
        }
        """
        graph = build_interference_graph(parse_function(src))
        assert graph.interferes(vreg("x"), vreg("y"))


class TestGraphQueries:
    def test_degree(self, loop):
        graph = build_interference_graph(loop)
        assert graph.degree(vreg("acc")) >= 2

    def test_clique_lower_bound_at_least_pressure_core(self, loop):
        graph = build_interference_graph(loop)
        # n, acc, i (and c or sq) are simultaneously live.
        assert graph.max_clique_lower_bound() >= 3

    def test_networkx_export(self, loop):
        graph = build_interference_graph(loop)
        nxg = graph.to_networkx()
        assert set(nxg.nodes) == set(graph.nodes)
        for a, b in nxg.edges:
            assert graph.interferes(a, b)
