"""CLI: every subcommand through main(argv)."""

import pytest

from repro.cli import main
from tests.conftest import LOOP_SRC


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "kernel.ir"
    path.write_text(LOOP_SRC)
    return str(path)


class TestWorkloadsCommand:
    def test_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("fir", "iir", "crc32", "fib"):
            assert name in out


class TestAnalyzeCommand:
    def test_on_named_workload(self, capsys):
        assert main(["analyze", "--workload", "fib", "--delta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "critical variables" in out

    def test_on_ir_file(self, capsys, ir_file):
        assert main(["analyze", ir_file, "--no-map"]) == 0
        out = capsys.readouterr().out
        assert "thermal data flow analysis of @loop" in out
        assert "peak thermal map" not in out

    def test_policy_selection(self, capsys):
        assert main(
            ["analyze", "--workload", "fib", "--policy", "chessboard"]
        ) == 0

    def test_merge_selection(self, capsys):
        assert main(["analyze", "--workload", "fib", "--merge", "max"]) == 0

    @pytest.mark.parametrize("engine", ["auto", "compiled", "stepped"])
    def test_engine_selection(self, capsys, engine):
        assert main(
            ["analyze", "--workload", "fib", "--engine", engine]
        ) == 0
        assert "converged" in capsys.readouterr().out

    def test_missing_input_fails(self, capsys):
        assert main(["analyze"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_fails(self, capsys):
        assert main(["analyze", "/nonexistent/file.ir"]) == 1

    def test_unknown_workload_fails(self, capsys):
        assert main(["analyze", "--workload", "nope"]) == 1
        assert "available" in capsys.readouterr().err


class TestCompileCommand:
    def test_pipeline_summary(self, capsys):
        assert main(["compile", "--workload", "fib"]) == 0
        out = capsys.readouterr().out
        assert "thermal plan" in out
        assert "instructions" in out

    def test_machine_selection(self, capsys):
        assert main(["compile", "--workload", "fib", "--machine", "rf32"]) == 0

    @pytest.mark.parametrize("engine", ["auto", "compiled", "stepped"])
    def test_engine_selection(self, capsys, engine):
        assert main(
            ["compile", "--workload", "fib", "--engine", engine]
        ) == 0
        assert "thermal plan" in capsys.readouterr().out

    def test_merge_selection(self, capsys):
        assert main(
            ["compile", "--workload", "fib", "--merge", "mean"]
        ) == 0


class TestSuiteCommand:
    def test_subset_run(self, capsys):
        assert main(["suite", "--workloads", "fib", "crc32",
                     "--delta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "fib" in out and "crc32" in out
        assert "shared context" in out
        assert "2 kernels" in out

    def test_json_report_written(self, capsys, tmp_path):
        path = tmp_path / "BENCH_suite.json"
        assert main(["suite", "--workloads", "fib", "--delta", "0.05",
                     "--json", str(path)]) == 0
        assert path.exists()
        import json

        data = json.loads(path.read_text())
        assert data["results"][0]["name"] == "fib"

    def test_quick_mode(self, capsys):
        assert main(["suite", "--quick", "--delta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "5 kernels" in out

    def test_chip_mode(self, capsys):
        assert main(["suite", "--workloads", "fib", "--chip",
                     "--delta", "0.05"]) == 0
        assert "chip model" in capsys.readouterr().out

    def test_unknown_workload_fails(self, capsys):
        assert main(["suite", "--workloads", "nope"]) == 1
        assert "available" in capsys.readouterr().err


class TestEmulateCommand:
    def test_basic(self, capsys):
        assert main(["emulate", "--workload", "fib"]) == 0
        out = capsys.readouterr().out
        assert "return value: 102334155" in out
        assert "steady map" in out

    def test_with_accuracy(self, capsys):
        assert main(
            ["emulate", "--workload", "fib", "--compare-analysis"]
        ) == 0
        out = capsys.readouterr().out
        assert "analysis:" in out
        assert "r=" in out

    def test_analysis_flags_threaded_through(self, capsys):
        """--delta/--merge/--engine reach the comparison analysis."""
        assert main(
            ["emulate", "--workload", "fib", "--compare-analysis",
             "--delta", "0.02", "--merge", "mean", "--engine", "stepped"]
        ) == 0
        assert "analysis:" in capsys.readouterr().out


class TestExitCodes:
    """0 converged, 2 did not converge, 1 bad input — per subcommand."""

    def test_converged_is_zero(self, capsys):
        assert main(["analyze", "--workload", "fib", "--delta", "0.05"]) == 0

    def test_non_convergence_is_two(self, capsys):
        assert main(["analyze", "--workload", "fib",
                     "--max-iterations", "1"]) == 2
        assert "DID NOT CONVERGE" in capsys.readouterr().out

    def test_bad_input_is_one(self, capsys):
        assert main(["analyze"]) == 1
        assert main(["analyze", "/nonexistent/file.ir"]) == 1
        assert main(["analyze", "--workload", "nope"]) == 1

    def test_suite_bad_workload_is_one(self, capsys):
        assert main(["suite", "--workloads", "nope"]) == 1

    def test_pipeline_bad_workload_is_one(self, capsys):
        assert main(["pipeline", "fib", "nope"]) == 1
        assert main(["pipeline"]) == 1


class TestPipelineCommand:
    def test_named_stages(self, capsys):
        assert main(["pipeline", "fib", "crc32", "fib",
                     "--machine", "rf16", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "stacked strategy" in out
        assert "3 stage(s), 2 distinct kernel(s)" in out
        assert "context:" in out

    @pytest.mark.parametrize("strategy", ["composed", "sequential"])
    def test_strategy_selection(self, capsys, strategy):
        assert main(["pipeline", "fib", "crc32", "--machine", "rf16",
                     "--strategy", strategy]) == 0
        assert f"{strategy} strategy" in capsys.readouterr().out

    def test_random_pipeline_json(self, capsys, tmp_path):
        path = tmp_path / "BENCH_pipeline.json"
        assert main(["pipeline", "--random", "4", "--seed", "2",
                     "--machine", "rf16", "--json", str(path)]) == 0
        import json

        data = json.loads(path.read_text())
        assert data["schema"] == "repro.pipeline/1"
        assert len(data["stages"]) == 4
        assert f"report written to {path}" in capsys.readouterr().out

    def test_max_merge_needs_sequential(self, capsys):
        assert main(["pipeline", "fib", "--merge", "max"]) == 1
        assert "affine merge" in capsys.readouterr().err

    def test_named_stages_conflict_with_random(self, capsys):
        assert main(["pipeline", "fib", "--random", "3"]) == 1
        assert "not both" in capsys.readouterr().err


class TestSharedServiceAcrossCommands:
    def test_analyze_chip_flag(self, capsys):
        assert main(["analyze", "--workload", "fib", "--chip",
                     "--delta", "0.05"]) == 0
        assert "chip model" in capsys.readouterr().out

    @staticmethod
    def _analyses_count(out: str) -> int:
        line = next(l for l in out.splitlines() if l.startswith("context:"))
        return int(line.split()[1])

    def test_stats_line_shows_shared_context(self, capsys):
        assert main(["analyze", "--workload", "fib", "--delta", "0.05",
                     "--stats"]) == 0
        first = self._analyses_count(capsys.readouterr().out)
        assert main(["compile", "--workload", "fib", "--stats"]) == 0
        second = self._analyses_count(capsys.readouterr().out)
        # Both commands ran through one process-wide context: the
        # compile invocation sees the analyze run in the counters.
        assert second > first


class TestServeCommand:
    def test_pipe_two_requests(self, capsys, monkeypatch):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO(
            '{"kind": "analyze", "workload": "fir", "delta": 0.05}\n'
            '{"kind": "analyze", "workload": "fib", "delta": 0.05}\n'
        ))
        assert main(["serve"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        envelopes = [json.loads(line) for line in lines]
        assert len(envelopes) == 2
        assert all(env["ok"] and env["result"]["converged"]
                   for env in envelopes)


class TestFig1Command:
    def test_renders_three_maps(self, capsys):
        assert main(["fig1", "--workload", "fib"]) == 0
        out = capsys.readouterr().out
        for name in ("first-free", "random", "chessboard"):
            assert name in out
