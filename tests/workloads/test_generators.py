"""Synthetic generators: pressure control, determinism, validity."""

import pytest

from repro.dataflow import liveness
from repro.ir import verify_function
from repro.sim import Interpreter
from repro.workloads import (
    pressure_program,
    random_loop_program,
    random_pipeline,
    random_program,
)


class TestPressureProgram:
    @pytest.mark.parametrize("k", [1, 4, 8, 16, 32])
    def test_oracle_holds(self, k):
        wl = pressure_program(k, iterations=10)
        result = Interpreter().run(wl.function)
        assert result.return_value == wl.expected_return

    @pytest.mark.parametrize("k", [4, 8, 16, 32])
    def test_pressure_tracks_live_count(self, k):
        wl = pressure_program(k, iterations=5)
        pressure = liveness(wl.function).max_pressure()
        # All k accumulators plus a handful of loop temporaries.
        assert k <= pressure <= k + 6

    def test_invalid_live_count(self):
        with pytest.raises(ValueError):
            pressure_program(0)


class TestRandomLoopProgram:
    @pytest.mark.parametrize("seed", range(8))
    def test_oracle_holds_across_seeds(self, seed):
        wl = random_loop_program(seed=seed)
        result = Interpreter().run(wl.function)
        assert result.return_value == wl.expected_return

    def test_deterministic_per_seed(self):
        a = random_loop_program(seed=3)
        b = random_loop_program(seed=3)
        assert str(a.function) == str(b.function)
        assert a.expected_return == b.expected_return

    def test_seeds_differ(self):
        a = random_loop_program(seed=0)
        b = random_loop_program(seed=1)
        assert str(a.function) != str(b.function)

    def test_size_knobs(self):
        small = random_loop_program(seed=0, body_ops=4, live_vars=2)
        large = random_loop_program(seed=0, body_ops=20, live_vars=8)
        assert (
            large.function.instruction_count()
            > small.function.instruction_count()
        )


class TestRandomProgram:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_valid_ir(self, seed):
        verify_function(random_program(seed=seed))

    def test_diamond_shape_present(self):
        f = random_program(seed=0, num_blocks=5, with_diamond=True)
        names = set(f.blocks)
        assert any(n.startswith("then") for n in names)
        assert any(n.startswith("join") for n in names)

    def test_executes_without_fault(self):
        f = random_program(seed=4)
        result = Interpreter().run(f)
        assert result.return_value is not None


class TestRandomPipeline:
    def test_deterministic_per_seed(self):
        a = random_pipeline(seed=5, length=8)
        b = random_pipeline(seed=5, length=8)
        assert [w.name for w in a] == [w.name for w in b]

    def test_seeds_differ(self):
        a = [w.name for w in random_pipeline(seed=0, length=10)]
        b = [w.name for w in random_pipeline(seed=1, length=10)]
        assert a != b

    def test_repeated_stages_share_objects(self):
        stages = random_pipeline(seed=2, length=30)
        by_name = {}
        for workload in stages:
            assert by_name.setdefault(workload.name, workload) is workload

    def test_all_stages_are_valid_ir(self):
        for workload in random_pipeline(seed=7, length=10):
            verify_function(workload.function)

    def test_length_validated(self):
        with pytest.raises(ValueError):
            random_pipeline(length=0)
