"""Workload kernels: oracles, structure, determinism."""

import pytest

from repro.ir import verify_function
from repro.sim import Interpreter
from repro.workloads import full_suite, load, workload_names


class TestOracles:
    @pytest.mark.parametrize("name", workload_names())
    def test_kernel_matches_python_reference(self, name):
        wl = load(name)
        result = Interpreter().run(
            wl.function, args=wl.args, memory=dict(wl.memory)
        )
        assert result.return_value == wl.expected_return

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load("not_a_kernel")


class TestStructure:
    @pytest.mark.parametrize("name", workload_names())
    def test_kernels_verify(self, name):
        verify_function(load(name).function)

    def test_suite_sizes(self):
        assert len(full_suite()) == len(workload_names()) == 14

    def test_descriptions_present(self):
        for wl in full_suite():
            assert wl.description
            assert wl.name == wl.function.name or wl.name.startswith(wl.function.name)

    def test_kernels_have_loops_except_none(self):
        from repro.ir import LoopInfo

        for wl in full_suite():
            assert LoopInfo(wl.function).loops, f"{wl.name} should loop"


class TestDeterminism:
    def test_same_kernel_twice_identical(self):
        a = load("fir")
        b = load("fir")
        assert str(a.function) == str(b.function)
        assert a.memory == b.memory
        assert a.expected_return == b.expected_return

    def test_parameterized_variants_differ(self):
        from repro.workloads.kernels import matmul

        small = matmul(4)
        large = matmul(8)
        assert small.expected_return != large.expected_return


class TestSizesScale:
    def test_matmul_dynamic_count_scales_cubically(self):
        from repro.workloads.kernels import matmul

        interp = Interpreter(trace_accesses=False)
        small = interp.run(matmul(4).function, memory=dict(matmul(4).memory))
        large = interp.run(matmul(8).function, memory=dict(matmul(8).memory))
        ratio = large.instructions_executed / small.instructions_executed
        assert ratio > 4.0  # roughly 8x for cubic scaling
