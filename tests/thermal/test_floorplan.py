"""Thermal grid: register↔node attribution at every granularity."""

import numpy as np
import pytest

from repro.arch import RegisterFileGeometry
from repro.errors import ThermalModelError
from repro.thermal import ThermalGrid


@pytest.fixture
def geo():
    return RegisterFileGeometry(rows=8, cols=8)


class TestMappingInvariants:
    @pytest.mark.parametrize("nodes", [(1, 1), (2, 2), (4, 4), (8, 8), (16, 16), (3, 5)])
    def test_columns_sum_to_one(self, geo, nodes):
        grid = ThermalGrid(geo, *nodes)
        sums = grid.mapping.sum(axis=0)
        assert np.allclose(sums, 1.0)

    def test_default_grid_is_identity(self, geo):
        grid = ThermalGrid(geo)
        assert grid.num_nodes == geo.num_registers
        assert np.allclose(grid.mapping, np.eye(64))

    def test_single_node_aggregates_everything(self, geo):
        grid = ThermalGrid(geo, 1, 1)
        assert grid.mapping.shape == (1, 64)
        assert np.allclose(grid.mapping, 1.0)

    def test_cells_per_node_totals_registers(self, geo):
        for nodes in [(2, 2), (8, 8), (16, 16)]:
            grid = ThermalGrid(geo, *nodes)
            assert grid.cells_per_node().sum() == pytest.approx(64.0)

    def test_fine_grid_splits_cells(self, geo):
        grid = ThermalGrid(geo, 16, 16)
        # Each register covers exactly 4 fine nodes at 1/4 each.
        col = grid.mapping[:, 0]
        assert (col > 0).sum() == 4
        assert np.allclose(col[col > 0], 0.25)


class TestPowerAttribution:
    def test_power_conserved(self, geo):
        for nodes in [(1, 1), (4, 4), (8, 8), (16, 16)]:
            grid = ThermalGrid(geo, *nodes)
            power = grid.power_vector({0: 1.0, 27: 2.5, 63: 0.5})
            assert power.sum() == pytest.approx(4.0)

    def test_power_lands_on_right_node(self, geo):
        grid = ThermalGrid(geo, 8, 8)
        power = grid.power_vector({27: 1.0})
        assert power[27] == pytest.approx(1.0)
        assert power.sum() == pytest.approx(1.0)

    def test_bad_register_rejected(self, geo):
        grid = ThermalGrid(geo)
        with pytest.raises(ThermalModelError):
            grid.power_vector({99: 1.0})


class TestTemperatureReadback:
    def test_register_temperature_identity_grid(self, geo):
        grid = ThermalGrid(geo)
        temps = np.arange(64, dtype=float)
        assert grid.register_temperature(temps, 10) == pytest.approx(10.0)

    def test_register_temperatures_vectorized(self, geo):
        grid = ThermalGrid(geo, 4, 4)
        temps = np.random.default_rng(0).normal(320, 2, grid.num_nodes)
        all_temps = grid.register_temperatures(temps)
        for reg in range(64):
            assert all_temps[reg] == pytest.approx(
                grid.register_temperature(temps, reg)
            )

    def test_coarse_grid_averages(self, geo):
        grid = ThermalGrid(geo, 1, 1)
        temps = np.array([321.5])
        assert grid.register_temperature(temps, 42) == pytest.approx(321.5)


class TestValidation:
    def test_bad_dimensions(self, geo):
        with pytest.raises(ThermalModelError):
            ThermalGrid(geo, 0, 4)
