"""The documented calibration claims of the default thermal parameters.

These tests pin the regime the reproduction's experiments rely on: if a
future parameter change breaks them, every Fig. 1-style comparison needs
re-examination.
"""

import pytest

from repro.arch import EnergyModel, RegisterFileGeometry
from repro.thermal import RFThermalModel


@pytest.fixture
def model():
    return RFThermalModel(RegisterFileGeometry(rows=8, cols=8))


@pytest.fixture
def energy():
    return EnergyModel()


def test_single_hammered_register_rise(model, energy):
    """One register written every cycle sits ~3 K above idle (docstring)."""
    power = energy.access_power(is_write=True)
    ss = model.steady_state({27: power})
    rise = ss.peak - model.params.ambient
    assert 1.5 <= rise <= 6.0


def test_excess_halves_within_a_cell_or_two(model, energy):
    power = energy.access_power(is_write=True)
    ss = model.steady_state({27: power})
    temps = ss.as_matrix()
    r, c = divmod(27, 8)
    self_rise = temps[r, c] - model.params.ambient
    neighbour_rise = temps[r, c + 1] - model.params.ambient
    assert neighbour_rise < 0.6 * self_rise
    assert neighbour_rise > 0.1 * self_rise  # but diffusion is visible


def test_tight_loop_working_set_builds_real_hotspot(model, energy):
    """A cluster of hammered registers reaches a 5-20 K hot spot."""
    power = energy.access_power(is_write=True)
    cluster = {0: 2 * power, 1: 2 * power, 8: 2 * power, 9: 2 * power}
    ss = model.steady_state(cluster)
    rise = ss.peak - model.params.ambient
    assert 5.0 <= rise <= 25.0


def test_settling_within_thousands_of_cycles(model):
    """Acceleration brings the time constant into the simulated regime."""
    tau_cycles = model.time_constant() / 1e-9
    assert 50 <= tau_cycles <= 5000
