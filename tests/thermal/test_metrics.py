"""Thermal metrics: summaries, correlation/RMSE edge cases."""

import numpy as np
import pytest

from repro.arch import RegisterFileGeometry
from repro.thermal import (
    ThermalGrid,
    ThermalState,
    correlation,
    gradient_field,
    peak_delta,
    rmse,
    summarize,
    temporal_mean_of_peaks,
    temporal_peak,
    time_above,
    uniformity,
)


@pytest.fixture
def grid():
    return ThermalGrid(RegisterFileGeometry(rows=4, cols=4))


class TestSummaries:
    def test_summarize_uniform(self, grid):
        s = summarize(ThermalState.uniform(grid, 320.0))
        assert s.peak == s.mean == 320.0
        assert s.spread == s.gradient == s.std == 0.0
        assert s.hotspots == 0

    def test_hotspot_counting(self, grid):
        temps = np.full(16, 300.0)
        temps[0] = 310.0  # mean ≈ 300.6; margin 5 → one hotspot
        s = summarize(ThermalState(grid, temps), hotspot_margin=5.0)
        assert s.hotspots == 1

    def test_as_dict_round_trip(self, grid):
        s = summarize(ThermalState.uniform(grid, 300.0))
        d = s.as_dict()
        assert set(d) == {"peak", "mean", "spread", "gradient", "std", "hotspots"}

    def test_peak_delta(self, grid):
        state = ThermalState.uniform(grid, 330.0)
        assert peak_delta(state, 318.15) == pytest.approx(11.85)

    def test_uniformity_bounds(self, grid):
        flat = ThermalState.uniform(grid, 300.0)
        assert uniformity(flat) == 1.0
        bumpy = ThermalState(grid, np.linspace(300, 340, 16))
        assert 0.0 < uniformity(bumpy) < 1.0


class TestGradientField:
    def test_single_hot_cell(self, grid):
        temps = np.full(16, 300.0)
        temps[5] = 306.0
        field = gradient_field(ThermalState(grid, temps))
        assert field.reshape(-1)[5] == pytest.approx(6.0)
        # Cells adjacent to the hot cell see the same gradient.
        assert field.reshape(-1)[4] == pytest.approx(6.0)
        # Far corner sees nothing.
        assert field.reshape(-1)[15] == pytest.approx(0.0)


class TestFieldComparison:
    def test_correlation_perfect(self):
        a = np.array([1.0, 2.0, 3.0])
        assert correlation(a, a * 2 + 5) == pytest.approx(1.0)

    def test_correlation_inverse(self):
        a = np.array([1.0, 2.0, 3.0])
        assert correlation(a, -a) == pytest.approx(-1.0)

    def test_correlation_constant_fields(self):
        const = np.full(4, 7.0)
        varying = np.array([1.0, 2.0, 3.0, 4.0])
        assert correlation(const, const) == 1.0
        assert correlation(const, varying) == 0.0

    def test_rmse(self):
        a = np.zeros(4)
        b = np.full(4, 2.0)
        assert rmse(a, b) == pytest.approx(2.0)
        assert rmse(a, a) == 0.0


class TestTemporal:
    def test_trace_metrics(self, grid):
        trace = [
            ThermalState.uniform(grid, 300.0),
            ThermalState.uniform(grid, 320.0),
            ThermalState.uniform(grid, 310.0),
        ]
        assert temporal_peak(trace) == 320.0
        assert temporal_mean_of_peaks(trace) == pytest.approx(310.0)
        assert time_above(trace, 305.0) == 2
