"""ASCII thermal map rendering."""

import numpy as np
import pytest

from repro.arch import RegisterFileGeometry
from repro.thermal import (
    RAMP,
    ThermalGrid,
    ThermalState,
    render_map,
    render_register_map,
    render_side_by_side,
)


@pytest.fixture
def grid():
    return ThermalGrid(RegisterFileGeometry(rows=4, cols=4))


class TestSingleMap:
    def test_dimensions(self, grid):
        text = render_map(ThermalState.uniform(grid, 300.0))
        lines = text.splitlines()
        assert len(lines) == 4 + 1  # rows + scale line
        assert all(len(line) == 8 for line in lines[:4])  # double-width cells

    def test_title(self, grid):
        text = render_map(ThermalState.uniform(grid, 300.0), title="(a)")
        assert text.splitlines()[0] == "(a)"

    def test_hot_cell_gets_densest_char(self, grid):
        temps = np.full(16, 300.0)
        temps[0] = 350.0
        text = render_map(ThermalState(grid, temps))
        assert RAMP[-1] in text.splitlines()[0]

    def test_pinned_scale(self, grid):
        temps = np.full(16, 310.0)
        text = render_map(ThermalState(grid, temps), t_min=300.0, t_max=340.0)
        # 310 in [300, 340] is low-ish: should not use the hottest glyph.
        assert RAMP[-1] not in text.splitlines()[0]


class TestSideBySide:
    def test_shared_scale_and_layout(self, grid):
        cool = ThermalState.uniform(grid, 300.0)
        temps = np.full(16, 300.0)
        temps[5] = 330.0
        hot = ThermalState(grid, temps)
        text = render_side_by_side([cool, hot], titles=["(a)", "(b)"])
        lines = text.splitlines()
        assert "(a)" in lines[0] and "(b)" in lines[0]
        # The cool map renders entirely with the coldest glyph because the
        # scale is shared with the hot map.
        body = "\n".join(lines[1:5])
        left_halves = [line[:8] for line in lines[1:5]]
        assert all(ch in (RAMP[0], " ") for half in left_halves for ch in half)

    def test_empty_list(self):
        assert render_side_by_side([]) == ""


class TestRegisterMap:
    def test_numeric_table_shape(self, grid):
        text = render_register_map(ThermalState.uniform(grid, 300.0))
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line.split()) == 4 for line in lines)

    def test_values_rendered(self, grid):
        text = render_register_map(ThermalState.uniform(grid, 321.5))
        assert "321.50" in text
