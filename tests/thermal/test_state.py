"""ThermalState: immutability, metrics, lattice operations."""

import numpy as np
import pytest

from repro.arch import RegisterFileGeometry
from repro.errors import ThermalModelError
from repro.thermal import ThermalGrid, ThermalState


@pytest.fixture
def grid():
    return ThermalGrid(RegisterFileGeometry(rows=4, cols=4))


def make_state(grid, values):
    return ThermalState(grid, np.array(values, dtype=float))


class TestConstruction:
    def test_uniform(self, grid):
        state = ThermalState.uniform(grid, 318.15)
        assert state.peak == state.mean == state.min == 318.15
        assert state.spread == 0.0

    def test_wrong_shape_rejected(self, grid):
        with pytest.raises(ThermalModelError):
            ThermalState(grid, np.zeros(5))

    def test_read_only(self, grid):
        state = ThermalState.uniform(grid, 300.0)
        with pytest.raises(ValueError):
            state.temperatures[0] = 999.0

    def test_input_array_not_aliased(self, grid):
        values = np.full(16, 300.0)
        state = ThermalState(grid, values)
        values[0] = 999.0
        assert state.peak == 300.0


class TestMetrics:
    def test_peak_mean_min(self, grid):
        temps = [300.0] * 15 + [310.0]
        state = make_state(grid, temps)
        assert state.peak == 310.0
        assert state.min == 300.0
        assert state.spread == 10.0
        assert state.mean == pytest.approx(300.625)

    def test_max_gradient_horizontal(self, grid):
        temps = np.full(16, 300.0)
        temps[5] = 308.0  # neighbours at 300 -> gradient 8
        state = ThermalState(grid, temps)
        assert state.max_gradient() == pytest.approx(8.0)

    def test_gradient_zero_for_uniform(self, grid):
        assert ThermalState.uniform(grid, 300.0).max_gradient() == 0.0

    def test_as_matrix_shape(self, grid):
        m = ThermalState.uniform(grid, 300.0).as_matrix()
        assert m.shape == (4, 4)

    def test_register_temperature(self, grid):
        temps = np.arange(16, dtype=float) + 300.0
        state = ThermalState(grid, temps)
        assert state.register_temperature(7) == pytest.approx(307.0)
        assert state.register_temperatures()[7] == pytest.approx(307.0)


class TestLatticeOps:
    def test_max_abs_diff(self, grid):
        a = ThermalState.uniform(grid, 300.0)
        temps = np.full(16, 300.0)
        temps[3] = 302.5
        b = ThermalState(grid, temps)
        assert a.max_abs_diff(b) == pytest.approx(2.5)
        assert b.max_abs_diff(a) == pytest.approx(2.5)

    def test_merge_max_dominates_inputs(self, grid):
        rng = np.random.default_rng(1)
        states = [ThermalState(grid, rng.normal(300, 3, 16)) for _ in range(3)]
        merged = states[0].merge_max(states[1:])
        for state in states:
            assert np.all(merged.temperatures >= state.temperatures - 1e-12)

    def test_weighted_mean_is_convex(self, grid):
        a = ThermalState.uniform(grid, 300.0)
        b = ThermalState.uniform(grid, 310.0)
        mixed = ThermalState.weighted_mean([a, b], [3.0, 1.0])
        assert mixed.mean == pytest.approx(302.5)

    def test_weighted_mean_zero_weights_falls_back(self, grid):
        a = ThermalState.uniform(grid, 300.0)
        b = ThermalState.uniform(grid, 310.0)
        mixed = ThermalState.weighted_mean([a, b], [0.0, 0.0])
        assert mixed.mean == pytest.approx(305.0)

    def test_weighted_mean_validation(self, grid):
        a = ThermalState.uniform(grid, 300.0)
        with pytest.raises(ThermalModelError):
            ThermalState.weighted_mean([], [])
        with pytest.raises(ThermalModelError):
            ThermalState.weighted_mean([a], [1.0, 2.0])

    def test_incompatible_grids_rejected(self, grid):
        other_grid = ThermalGrid(RegisterFileGeometry(rows=2, cols=2))
        a = ThermalState.uniform(grid, 300.0)
        b = ThermalState.uniform(other_grid, 300.0)
        with pytest.raises(ThermalModelError):
            a.max_abs_diff(b)

    def test_equality_by_value(self, grid):
        a = ThermalState.uniform(grid, 300.0)
        b = ThermalState.uniform(grid, 300.0)
        assert a == b
        assert not (a != b)

    def test_unhashable(self, grid):
        with pytest.raises(TypeError):
            hash(ThermalState.uniform(grid, 300.0))
