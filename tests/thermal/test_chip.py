"""Chip-level thermal model: layout, power attribution, heat migration."""

import numpy as np
import pytest

from repro.arch import rf64
from repro.core import AnalysisContext, TDFAConfig, ThermalDataflowAnalysis
from repro.errors import ThermalModelError
from repro.ir import parse_instruction
from repro.regalloc import allocate_linear_scan
from repro.thermal import ChipLayout, ChipPowerModel, ChipThermalModel
from repro.workloads import load, small_suite


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def layout(machine):
    return ChipLayout(machine.geometry)


@pytest.fixture(scope="module")
def chip(machine, layout):
    return ChipThermalModel(machine, layout=layout)


@pytest.fixture(scope="module")
def power_model(machine, chip):
    return ChipPowerModel(machine, chip)


class TestLayout:
    def test_blocks_tile_the_die(self, layout):
        cells = []
        for block in layout.blocks:
            cells.extend(block.cells(layout.die_cols))
        die = layout.die_rows * layout.die_cols
        assert sorted(cells) == list(range(die))

    def test_rf_cells_inside_rf_block(self, machine, layout):
        rf_block_cells = set(layout.block_cells("rf"))
        for reg in range(machine.geometry.num_registers):
            assert layout.rf_cell(reg) in rf_block_cells

    def test_rf_cell_bijective(self, machine, layout):
        cells = {layout.rf_cell(r) for r in range(machine.geometry.num_registers)}
        assert len(cells) == machine.geometry.num_registers

    def test_unknown_block_rejected(self, layout):
        with pytest.raises(ThermalModelError):
            layout.block_cells("fpu")


class TestPowerAttribution:
    def test_register_access_heats_rf_cell(self, layout, power_model):
        inst = parse_instruction("r10 = add r20, r30")
        power = power_model.dynamic_power(inst)
        for reg in (10, 20, 30):
            assert power[layout.rf_cell(reg)] > 0.0
        # The ALU block heats too (it executed the add).
        alu = layout.block_cells("alu")
        assert power[alu].sum() > 0.0
        # The cache stays cold.
        cache = layout.block_cells("dcache")
        assert power[cache].sum() == 0.0

    def test_memory_op_heats_cache(self, layout, power_model):
        inst = parse_instruction("r1 = load r2")
        power = power_model.dynamic_power(inst)
        cache = layout.block_cells("dcache")
        assert power[cache].sum() > 0.0

    def test_spill_heats_cache_not_alu(self, layout, power_model):
        inst = parse_instruction("spill @s, r3")
        power = power_model.dynamic_power(inst)
        assert power[layout.block_cells("dcache")].sum() > 0.0
        assert power[layout.block_cells("alu")].sum() == 0.0

    def test_nop_heats_nothing(self, power_model):
        assert power_model.dynamic_power(parse_instruction("nop")).sum() == 0.0

    def test_energy_conservation(self, machine, power_model):
        inst = parse_instruction("r1 = add r2, r3")
        power = power_model.dynamic_power(inst)
        em = machine.energy
        expected = (
            2 * em.access_power(False)
            + em.access_power(True)
            + em.alu_energy / em.cycle_time
        )
        assert power.sum() == pytest.approx(expected)


class TestChipQueries:
    def test_block_peak_and_mean(self, chip):
        state = chip.steady_state({0: 0.0})
        for block in ("rf", "alu", "dcache"):
            assert chip.block_peak(state, block) == pytest.approx(
                chip.params.ambient
            )
            assert chip.block_mean(state, block) == pytest.approx(
                chip.params.ambient
            )

    def test_heat_diffuses_between_blocks(self, machine, chip, layout):
        """A hot RF warms the adjacent ALU more than the far cache corner."""
        hot = {layout.rf_cell(r): 5e-3 for r in range(8)}  # RF row 0
        # Build power on die-cell indices directly.
        power = np.zeros(layout.die_geometry.num_registers)
        for cell, p in hot.items():
            power[cell] = p
        state = chip.steady_state(power)
        alu_mean = chip.block_mean(state, "alu")
        cache_mean = chip.block_mean(state, "dcache")
        assert alu_mean > chip.params.ambient
        assert alu_mean > cache_mean  # ALU is adjacent, cache is farther


class TestChipAnalysis:
    def test_tdfa_runs_on_chip_model(self, machine, chip, power_model):
        wl = load("fib")
        allocated = allocate_linear_scan(wl.function, machine).function
        analysis = ThermalDataflowAnalysis(
            machine=machine,
            model=chip,
            power_model=power_model,
            config=TDFAConfig(delta=0.05),
        )
        result = analysis.run(allocated)
        assert result.converged
        peak = result.peak_state()
        # fib has no memory traffic: RF and ALU heat, cache stays cool.
        assert chip.block_peak(peak, "rf") > chip.block_mean(peak, "dcache")

    def test_spilling_migrates_heat_to_cache(self, machine, chip):
        """The §4 trade measured chip-wide: spill traffic heats the cache."""
        from repro.ir.values import VirtualRegister
        from repro.regalloc import insert_spill_code

        wl = load("iir")
        victims = {
            v for v in wl.function.virtual_registers()
            if isinstance(v, VirtualRegister)
        }
        victims = set(sorted(victims, key=str)[:3])
        spilled_fn = insert_spill_code(wl.function, victims)

        def cache_peak(function):
            allocated = allocate_linear_scan(function, machine).function
            power_model = ChipPowerModel(machine, chip)
            analysis = ThermalDataflowAnalysis(
                machine=machine, model=chip, power_model=power_model,
                config=TDFAConfig(delta=0.02),
            )
            result = analysis.run(allocated)
            return chip.block_peak(result.peak_state(), "dcache")

        assert cache_peak(spilled_fn) > cache_peak(wl.function)


class TestChipEngineAgreement:
    """Compiled and stepped fixed points agree on the die-level model."""

    DELTA = 0.01

    @pytest.mark.parametrize(
        "kernel", [wl.name for wl in small_suite()]
    )
    def test_engines_agree_within_two_delta(self, machine, chip, kernel):
        func = allocate_linear_scan(load(kernel).function, machine).function
        results = {}
        for engine in ("compiled", "stepped"):
            analysis = ThermalDataflowAnalysis(
                machine,
                model=chip,
                power_model=ChipPowerModel(machine, chip),
                config=TDFAConfig(delta=self.DELTA, engine=engine),
            )
            results[engine] = analysis.run(func)
        compiled, stepped = results["compiled"], results["stepped"]
        assert compiled.converged and stepped.converged
        assert set(compiled.after) == set(stepped.after)
        worst = max(
            compiled.after[key].max_abs_diff(stepped.after[key])
            for key in stepped.after
        )
        assert worst <= 2 * self.DELTA, kernel

    def test_batched_sweep_matches_blockwise_on_chip(self, machine, chip):
        func = allocate_linear_scan(load("iir").function, machine).function
        results = {}
        for sweep in ("batched", "blockwise"):
            analysis = ThermalDataflowAnalysis(
                machine,
                model=chip,
                power_model=ChipPowerModel(machine, chip),
                config=TDFAConfig(delta=self.DELTA, engine="compiled",
                                  sweep=sweep),
            )
            results[sweep] = analysis.run(func)
        batched, blockwise = results["batched"], results["blockwise"]
        assert batched.iterations == blockwise.iterations
        worst = max(
            batched.after[key].max_abs_diff(blockwise.after[key])
            for key in blockwise.after
        )
        assert worst <= 2 * self.DELTA

    def test_chip_context_reuses_compiled_blocks(self, machine):
        ctx = AnalysisContext.for_chip(machine)
        func = allocate_linear_scan(load("fib").function, machine).function
        ctx.analyze(func, delta=self.DELTA)
        compiles = ctx.stats["block_compiles"]
        ctx.analyze(func, delta=self.DELTA)
        assert ctx.stats["block_compiles"] == compiles
        assert ctx.stats["block_hits"] >= len(func.blocks)
