"""RC network physics: steady state, exact stepping, linearity, runaway."""

import numpy as np
import pytest

from repro.arch import EnergyModel, RegisterFileGeometry
from repro.errors import ConvergenceError, ThermalModelError
from repro.thermal import RFThermalModel, ThermalGrid, ThermalParams


@pytest.fixture
def geo():
    return RegisterFileGeometry(rows=8, cols=8)


@pytest.fixture
def model(geo):
    return RFThermalModel(geo)


HOT = 27  # an interior register


class TestSteadyState:
    def test_zero_power_is_ambient(self, model):
        ss = model.steady_state(np.zeros(model.grid.num_nodes))
        assert ss.peak == pytest.approx(model.params.ambient)
        assert ss.spread == pytest.approx(0.0)

    def test_uniform_power_uniform_rise(self, model):
        ss = model.steady_state({i: 1e-3 for i in range(64)})
        assert ss.spread == pytest.approx(0.0, abs=1e-9)
        assert ss.peak > model.params.ambient

    def test_point_source_peaks_at_source(self, model):
        ss = model.steady_state({HOT: 5e-3})
        temps = ss.as_matrix()
        r, c = divmod(HOT, 8)
        assert temps[r, c] == ss.peak

    def test_monotone_decay_with_distance(self, model):
        ss = model.steady_state({HOT: 5e-3})
        temps = ss.as_matrix()
        r, c = divmod(HOT, 8)
        row = temps[r]
        # Temperatures decrease monotonically moving right from the source.
        diffs = np.diff(row[c:])
        assert np.all(diffs < 0)

    def test_superposition(self, model):
        """The linear network obeys superposition exactly."""
        p1 = model.power_vector({10: 2e-3})
        p2 = model.power_vector({53: 3e-3})
        t1 = model.steady_state(p1).temperatures - model.params.ambient
        t2 = model.steady_state(p2).temperatures - model.params.ambient
        t12 = model.steady_state(p1 + p2).temperatures - model.params.ambient
        assert np.allclose(t12, t1 + t2)

    def test_power_scaling_linearity(self, model):
        t1 = model.steady_state({HOT: 1e-3}).temperatures - model.params.ambient
        t3 = model.steady_state({HOT: 3e-3}).temperatures - model.params.ambient
        assert np.allclose(t3, 3 * t1)

    def test_wrong_length_rejected(self, model):
        with pytest.raises(ThermalModelError):
            model.steady_state(np.zeros(7))


class TestTransient:
    def test_step_relaxes_toward_steady_state(self, model):
        power = model.power_vector({HOT: 5e-3})
        target = model.steady_state(power)
        state = model.ambient_state()
        previous_gap = target.max_abs_diff(state)
        for _ in range(5):
            state = model.step(state, power, cycles=100)
            gap = target.max_abs_diff(state)
            assert gap < previous_gap
            previous_gap = gap
        assert previous_gap < 1.0

    def test_two_half_steps_equal_one_full_step(self, model):
        """The exponential integrator composes exactly."""
        power = model.power_vector({HOT: 5e-3})
        state = model.ambient_state()
        one = model.step(state, power, dt=2e-7)
        half = model.step(model.step(state, power, dt=1e-7), power, dt=1e-7)
        assert np.allclose(one.temperatures, half.temperatures, atol=1e-9)

    def test_steady_state_is_step_fixed_point(self, model):
        power = model.power_vector({HOT: 5e-3})
        ss = model.steady_state(power)
        stepped = model.step(ss, power, cycles=500)
        assert ss.max_abs_diff(stepped) < 1e-9

    def test_relax_cools_to_ambient(self, model):
        power = model.power_vector({HOT: 5e-3})
        hot = model.steady_state(power)
        cooled = model.relax(hot, dt=1e-9, cycles=50_000)
        assert cooled.peak - model.params.ambient < 0.05

    def test_invalid_step_args(self, model):
        state = model.ambient_state()
        with pytest.raises(ThermalModelError):
            model.step(state, np.zeros(64), dt=-1.0)
        with pytest.raises(ThermalModelError):
            model.step(state, np.zeros(64), cycles=0)


class TestAccelerationInvariance:
    def test_steady_state_independent_of_capacitance(self, geo):
        """The documented soundness argument for thermal acceleration."""
        slow = RFThermalModel(geo, params=ThermalParams(acceleration=1.0))
        fast = RFThermalModel(geo, params=ThermalParams(acceleration=1e6))
        p = {HOT: 5e-3, 3: 1e-3}
        assert np.allclose(
            slow.steady_state(p).temperatures,
            fast.steady_state(p).temperatures,
        )

    def test_acceleration_shortens_time_constant(self, geo):
        slow = RFThermalModel(geo, params=ThermalParams(acceleration=1.0))
        fast = RFThermalModel(geo, params=ThermalParams(acceleration=1e4))
        assert fast.time_constant() == pytest.approx(
            slow.time_constant() / 1e4, rel=1e-6
        )


class TestLeakage:
    def test_constant_leakage_vector(self, geo):
        model = RFThermalModel(geo, energy=EnergyModel(leakage_power=2e-6))
        leak = model.leakage_vector()
        assert leak.sum() == pytest.approx(2e-6 * 64)

    def test_temperature_dependent_leakage_grows(self, geo):
        energy = EnergyModel(leakage_power=1e-5, leakage_temp_coeff=0.03)
        model = RFThermalModel(geo, energy=energy)
        cold = model.ambient_state()
        hot_temps = np.full(64, model.params.ambient + 20.0)
        from repro.thermal import ThermalState

        hot = ThermalState(model.grid, hot_temps)
        assert model.leakage_vector(hot).sum() > model.leakage_vector(cold).sum()

    def test_mild_feedback_converges(self, geo):
        energy = EnergyModel(leakage_power=1e-5, leakage_temp_coeff=0.02)
        model = RFThermalModel(geo, energy=energy)
        ss = model.steady_state_with_leakage({HOT: 3e-3})
        assert ss.peak > model.params.ambient

    def test_runaway_detected(self, geo):
        """Strong feedback diverges — the genuine non-convergence case."""
        energy = EnergyModel(leakage_power=5e-3, leakage_temp_coeff=0.5)
        model = RFThermalModel(geo, energy=energy)
        with pytest.raises(ConvergenceError) as err:
            model.steady_state_with_leakage({HOT: 6e-3})
        assert err.value.partial_result is not None


class TestAffineStepAPI:
    """Public step_operator/affine_step/steady_state_many surface."""

    DT = 1e-9

    def test_step_operator_is_substochastic(self, model):
        op = model.step_operator(self.DT)
        assert np.all(op >= -1e-15)
        assert np.abs(op).sum(axis=1).max() < 1.0

    def test_operator_cache_counters(self, model):
        builds, hits = model.operator_builds, model.operator_hits
        model.step_operator(self.DT)
        assert model.operator_builds >= builds  # may already be cached
        model.step_operator(self.DT)
        assert model.operator_hits > hits

    def test_affine_step_reproduces_step(self, model):
        """T' = A·T + b must equal the closed-form step() exactly."""
        power = model.power_vector({HOT: 5e-3})
        a, b = model.affine_step(power, self.DT)
        state = model.ambient_state()
        via_affine = a @ state.temperatures + b
        via_step = model.step(state, power, dt=self.DT).temperatures
        assert np.allclose(via_affine, via_step, atol=1e-12)

    def test_affine_step_fixed_point_is_steady_state(self, model):
        power = model.power_vector({HOT: 5e-3})
        a, b = model.affine_step(power, self.DT)
        steady = model.steady_state(power).temperatures
        assert np.allclose(a @ steady + b, steady, atol=1e-9)

    def test_steady_state_many_matches_single_solves(self, model):
        powers = np.stack(
            [model.power_vector({HOT: 5e-3}),
             model.power_vector({0: 1e-3}),
             np.zeros(model.grid.num_nodes)],
            axis=1,
        )
        batched = model.steady_state_many(powers)
        for j in range(powers.shape[1]):
            single = model.steady_state(powers[:, j]).temperatures
            assert np.allclose(batched[:, j], single, atol=1e-12)

    def test_steady_state_many_rejects_bad_shape(self, model):
        with pytest.raises(ThermalModelError):
            model.steady_state_many(np.zeros(model.grid.num_nodes))
        with pytest.raises(ThermalModelError):
            model.steady_state_many(np.zeros((3, model.grid.num_nodes)))


class TestConductanceStructure:
    def test_symmetric_positive_definite(self, model):
        g = model.conductance
        assert np.allclose(g, g.T)
        eigvals = np.linalg.eigvalsh(g)
        assert np.all(eigvals > 0)

    def test_interior_node_has_four_neighbours(self, model):
        g = model.conductance
        row = g[27]
        off_diagonal = np.count_nonzero(row) - 1
        assert off_diagonal == 4

    def test_corner_node_has_two_neighbours(self, model):
        g = model.conductance
        assert np.count_nonzero(g[0]) - 1 == 2

    def test_invalid_params_rejected(self):
        with pytest.raises(ThermalModelError):
            ThermalParams(acceleration=0.0)
        with pytest.raises(ThermalModelError):
            ThermalParams(k_lateral=-1.0)
