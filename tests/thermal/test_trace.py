"""Power and thermal trace containers."""

import numpy as np
import pytest

from repro.arch import RegisterFileGeometry
from repro.errors import ThermalModelError
from repro.thermal import PowerTrace, ThermalGrid, ThermalState, ThermalTrace


@pytest.fixture
def grid():
    return ThermalGrid(RegisterFileGeometry(rows=4, cols=4))


class TestPowerTrace:
    def test_energy_integration(self, grid):
        trace = PowerTrace(grid=grid, dt=1e-6)
        trace.append(np.full(16, 1.0))   # 16 W for 1 µs
        trace.append(np.full(16, 2.0))   # 32 W for 1 µs
        assert trace.total_energy() == pytest.approx(48e-6)

    def test_mean_power(self, grid):
        trace = PowerTrace(grid=grid, dt=1e-6)
        trace.append(np.zeros(16))
        trace.append(np.full(16, 4.0))
        assert np.allclose(trace.mean_power(), 2.0)

    def test_empty_trace(self, grid):
        trace = PowerTrace(grid=grid, dt=1e-6)
        assert trace.total_energy() == 0.0
        assert np.allclose(trace.mean_power(), 0.0)
        assert len(trace) == 0

    def test_wrong_shape_rejected(self, grid):
        trace = PowerTrace(grid=grid, dt=1e-6)
        with pytest.raises(ThermalModelError):
            trace.append(np.zeros(5))


class TestThermalTrace:
    def test_final_and_len(self, grid):
        trace = ThermalTrace(grid=grid, dt=1e-6)
        a = ThermalState.uniform(grid, 300.0)
        b = ThermalState.uniform(grid, 305.0)
        trace.append(a)
        trace.append(b)
        assert trace.final == b
        assert len(trace) == 2

    def test_final_on_empty_raises(self, grid):
        with pytest.raises(ThermalModelError):
            _ = ThermalTrace(grid=grid, dt=1e-6).final

    def test_peak_and_gradient_series(self, grid):
        trace = ThermalTrace(grid=grid, dt=1e-6)
        trace.append(ThermalState.uniform(grid, 300.0))
        temps = np.full(16, 300.0)
        temps[3] = 312.0
        trace.append(ThermalState(grid, temps))
        assert list(trace.peak_over_time()) == [300.0, 312.0]
        assert trace.gradient_over_time()[1] == pytest.approx(12.0)

    def test_time_average(self, grid):
        trace = ThermalTrace(grid=grid, dt=1e-6)
        trace.append(ThermalState.uniform(grid, 300.0))
        trace.append(ThermalState.uniform(grid, 310.0))
        assert trace.time_average().mean == pytest.approx(305.0)

    def test_grid_mismatch_rejected(self, grid):
        other = ThermalGrid(RegisterFileGeometry(rows=2, cols=2))
        trace = ThermalTrace(grid=grid, dt=1e-6)
        with pytest.raises(ThermalModelError):
            trace.append(ThermalState.uniform(other, 300.0))
