"""Energy model: access energy, bitwidth scaling, leakage curves."""

import math

import pytest

from repro.arch import EnergyModel
from repro.errors import ThermalModelError


class TestAccessEnergy:
    def test_writes_cost_more_than_reads(self):
        em = EnergyModel()
        assert em.access_energy(is_write=True) > em.access_energy(is_write=False)

    def test_power_is_energy_over_cycle(self):
        em = EnergyModel(read_energy=4e-12, cycle_time=1e-9)
        assert em.access_power(is_write=False) == pytest.approx(4e-3)

    def test_bitwidth_scaling_disabled_by_default(self):
        em = EnergyModel()
        assert em.access_energy(False, bitwidth=8) == em.access_energy(False)

    def test_bitwidth_scaling(self):
        em = EnergyModel(bitwidth_scaling=True)
        full = em.access_energy(False, bitwidth=32)
        half = em.access_energy(False, bitwidth=16)
        assert half == pytest.approx(full / 2)

    def test_bitwidth_clamped(self):
        em = EnergyModel(bitwidth_scaling=True)
        assert em.access_energy(False, bitwidth=64) == em.access_energy(False, 32)
        assert em.access_energy(False, bitwidth=0) == pytest.approx(
            em.access_energy(False, 32) / 32
        )

    def test_invalid_construction(self):
        with pytest.raises(ThermalModelError):
            EnergyModel(read_energy=-1.0)
        with pytest.raises(ThermalModelError):
            EnergyModel(cycle_time=0.0)


class TestLeakage:
    def test_constant_without_coefficient(self):
        em = EnergyModel(leakage_power=1e-5, leakage_temp_coeff=0.0)
        assert em.leakage_at(300.0) == em.leakage_at(400.0) == 1e-5

    def test_exponential_growth(self):
        em = EnergyModel(leakage_power=1e-5, leakage_temp_coeff=0.03,
                         leakage_ref_temp=318.15)
        at_ref = em.leakage_at(318.15)
        plus_ten = em.leakage_at(328.15)
        assert at_ref == pytest.approx(1e-5)
        assert plus_ten == pytest.approx(1e-5 * math.exp(0.3))

    def test_overflow_clamped(self):
        em = EnergyModel(leakage_temp_coeff=0.05)
        assert math.isfinite(em.leakage_at(1e6))

    def test_with_leakage_feedback_copy(self):
        base = EnergyModel()
        fed = base.with_leakage_feedback(0.04)
        assert fed.leakage_temp_coeff == 0.04
        assert base.leakage_temp_coeff == 0.0
        assert fed.read_energy == base.read_energy
