"""Register file geometry: positions, banks, chessboard, distances."""

import pytest

from repro.arch import RegisterFileGeometry
from repro.errors import ThermalModelError


class TestLayout:
    def test_row_major_numbering(self):
        geo = RegisterFileGeometry(rows=4, cols=8)
        assert geo.position(0) == (0, 0)
        assert geo.position(7) == (0, 7)
        assert geo.position(8) == (1, 0)
        assert geo.position(31) == (3, 7)

    def test_index_position_inverse(self):
        geo = RegisterFileGeometry(rows=8, cols=8)
        for i in range(geo.num_registers):
            r, c = geo.position(i)
            assert geo.index(r, c) == i

    def test_dimensions(self):
        geo = RegisterFileGeometry(rows=4, cols=8, cell_width=2e-6, cell_height=3e-6)
        assert geo.width == pytest.approx(16e-6)
        assert geo.height == pytest.approx(12e-6)
        assert geo.cell_area == pytest.approx(6e-12)

    def test_center(self):
        geo = RegisterFileGeometry(rows=2, cols=2, cell_width=10e-6, cell_height=10e-6)
        assert geo.center(0) == (pytest.approx(5e-6), pytest.approx(5e-6))
        assert geo.center(3) == (pytest.approx(15e-6), pytest.approx(15e-6))

    def test_out_of_range(self):
        geo = RegisterFileGeometry(rows=2, cols=2)
        with pytest.raises(ThermalModelError):
            geo.position(4)
        with pytest.raises(ThermalModelError):
            geo.index(2, 0)

    def test_invalid_construction(self):
        with pytest.raises(ThermalModelError):
            RegisterFileGeometry(rows=0, cols=4)
        with pytest.raises(ThermalModelError):
            RegisterFileGeometry(rows=4, cols=4, cell_width=-1.0)


class TestBanks:
    def test_banks_partition_registers(self):
        geo = RegisterFileGeometry(rows=4, cols=8, banks=4)
        all_regs = set()
        for bank in range(4):
            regs = geo.registers_in_bank(bank)
            assert len(regs) == 8
            all_regs.update(regs)
        assert all_regs == set(range(32))

    def test_bank_of_contiguous_ranges(self):
        geo = RegisterFileGeometry(rows=4, cols=8, banks=2)
        assert geo.bank_of(0) == 0
        assert geo.bank_of(15) == 0
        assert geo.bank_of(16) == 1
        assert geo.bank_of(31) == 1

    def test_bank_of_matches_registers_in_bank(self):
        geo = RegisterFileGeometry(rows=8, cols=8, banks=4)
        for bank in range(4):
            for reg in geo.registers_in_bank(bank):
                assert geo.bank_of(reg) == bank

    def test_banks_must_divide_register_count(self):
        with pytest.raises(ThermalModelError):
            RegisterFileGeometry(rows=4, cols=8, banks=5)

    def test_bank_out_of_range(self):
        geo = RegisterFileGeometry(rows=4, cols=8, banks=2)
        with pytest.raises(ThermalModelError):
            geo.registers_in_bank(2)


class TestDistanceAndChessboard:
    def test_manhattan_distance(self):
        geo = RegisterFileGeometry(rows=8, cols=8)
        assert geo.manhattan_distance(0, 0) == 0
        assert geo.manhattan_distance(0, 1) == 1
        assert geo.manhattan_distance(0, 8) == 1
        assert geo.manhattan_distance(0, 63) == 14

    def test_chessboard_colors_alternate(self):
        geo = RegisterFileGeometry(rows=8, cols=8)
        assert geo.chessboard_color(0) == 0
        assert geo.chessboard_color(1) == 1
        assert geo.chessboard_color(8) == 1  # next row offsets by one
        assert geo.chessboard_color(9) == 0

    def test_chessboard_classes_halve_the_rf(self):
        geo = RegisterFileGeometry(rows=8, cols=8)
        class0 = geo.chessboard_registers(0)
        class1 = geo.chessboard_registers(1)
        assert len(class0) == len(class1) == 32
        assert set(class0) | set(class1) == set(range(64))

    def test_chessboard_neighbors_differ(self):
        geo = RegisterFileGeometry(rows=8, cols=8)
        for reg in geo.chessboard_registers(0):
            row, col = geo.position(reg)
            if col + 1 < geo.cols:
                assert geo.chessboard_color(geo.index(row, col + 1)) == 1
