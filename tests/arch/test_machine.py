"""Machine description: allocatable sets, latencies, presets."""

import pytest

from repro.arch import (
    MachineDescription,
    RegisterFileGeometry,
    banked_rf64,
    rf16,
    rf32,
    rf64,
)
from repro.errors import ThermalModelError
from repro.ir import Opcode


class TestAllocatable:
    def test_default_all_allocatable(self):
        m = rf64()
        assert m.allocatable_registers() == list(range(64))

    def test_reserved_excluded(self):
        m = MachineDescription(
            geometry=RegisterFileGeometry(rows=2, cols=2),
            reserved_registers=(0, 3),
        )
        assert m.allocatable_registers() == [1, 2]

    def test_reserved_out_of_range_rejected(self):
        with pytest.raises(ThermalModelError):
            MachineDescription(
                geometry=RegisterFileGeometry(rows=2, cols=2),
                reserved_registers=(9,),
            )

    def test_all_reserved_rejected(self):
        with pytest.raises(ThermalModelError):
            MachineDescription(
                geometry=RegisterFileGeometry(rows=1, cols=2),
                reserved_registers=(0, 1),
            )


class TestLatency:
    def test_memory_ops_slower(self):
        m = rf64()
        assert m.instruction_latency(Opcode.LOAD) == m.load_latency > 1
        assert m.instruction_latency(Opcode.RELOAD) == m.load_latency
        assert m.instruction_latency(Opcode.ADD) == 1

    def test_long_ops(self):
        m = rf64()
        assert m.instruction_latency(Opcode.DIV) > m.instruction_latency(Opcode.MUL) > 1


class TestPresets:
    def test_sizes(self):
        assert rf64().num_registers == 64
        assert rf32().num_registers == 32
        assert rf16().num_registers == 16

    def test_banked(self):
        m = banked_rf64(banks=4)
        assert m.geometry.banks == 4
        assert m.num_registers == 64

    def test_leakage_feedback_knob(self):
        assert rf64().energy.leakage_temp_coeff == 0.0
        assert rf64(leakage_feedback=0.03).energy.leakage_temp_coeff == 0.03
