"""Live-variable analysis on the canonical shapes."""

from repro.dataflow import liveness
from repro.ir import parse_function
from repro.ir.values import vreg


class TestBlockLevel:
    def test_straightline(self, straightline):
        info = liveness(straightline)
        assert info.live_in["entry"] == frozenset({vreg("a"), vreg("b")})
        assert info.live_out["entry"] == frozenset()

    def test_loop_carried_values_live_at_header(self, loop):
        info = liveness(loop)
        assert vreg("acc") in info.live_in["head"]
        assert vreg("i") in info.live_in["head"]
        assert vreg("n") in info.live_in["head"]

    def test_dead_after_last_use(self, loop):
        info = liveness(loop)
        # %c is consumed by the branch; nothing outlives head.
        assert vreg("c") not in info.live_out["head"]

    def test_value_live_across_branch_arms(self, diamond):
        info = liveness(diamond)
        # %x is used in join, so it is live through both arms.
        assert vreg("x") in info.live_out["small"] or vreg("x") in info.live_in["small"]
        assert vreg("x") in info.live_in["big"]


class TestInstructionLevel:
    def test_per_instruction_chain(self, straightline):
        info = liveness(straightline)
        before = info.live_before("entry")
        after = info.live_after("entry")
        # Before the first add, params are live.
        assert before[0] >= {vreg("a"), vreg("b")}
        # After the final ret, nothing is live.
        assert after[-1] == set()
        # %t0 dies at the mul that consumes it.
        assert vreg("t0") in before[1]
        assert vreg("t0") not in after[1]

    def test_def_kills_liveness_backwards(self, loop):
        info = liveness(loop)
        before = info.live_before("body")
        # %sq is not live before its defining mul.
        assert vreg("sq") not in before[0]
        assert vreg("sq") in info.live_after("body")[0]


class TestPressure:
    def test_max_pressure_straightline(self, straightline):
        # a, b live together, then t1+b, never more than ~2-3.
        assert liveness(straightline).max_pressure() <= 3

    def test_max_pressure_loop(self, loop):
        # n, acc, i (+c/sq transients) live through the loop.
        pressure = liveness(loop).max_pressure()
        assert 3 <= pressure <= 5

    def test_pressure_scales_with_generator(self):
        from repro.workloads import pressure_program

        low = pressure_program(4).function
        high = pressure_program(16).function
        assert liveness(high).max_pressure() >= liveness(low).max_pressure() + 10

    def test_dead_code_not_live(self):
        src = """
        func @f() {
        entry:
          %dead = li 42
          %live = li 1
          ret %live
        }
        """
        info = liveness(parse_function(src))
        assert vreg("dead") not in info.live_after("entry")[0]
