"""Bitwidth (interval) analysis: ranges, widening, derived widths."""

from repro.dataflow import bitwidth_analysis
from repro.dataflow.bitwidth import BOOL, TOP, Interval
from repro.ir import parse_function
from repro.ir.values import vreg


class TestIntervalType:
    def test_clamping_to_word(self):
        iv = Interval(-(2**40), 2**40)
        assert iv.lo == -(2**31)
        assert iv.hi == 2**31 - 1

    def test_hull(self):
        assert Interval(0, 5).hull(Interval(3, 9)) == Interval(0, 9)

    def test_bitwidth_positive(self):
        assert Interval(0, 1).bitwidth == 1
        assert Interval(0, 255).bitwidth == 8
        assert Interval(0, 256).bitwidth == 9

    def test_bitwidth_negative_needs_sign_bit(self):
        assert Interval(-1, 0).bitwidth == 1
        assert Interval(-128, 127).bitwidth == 8
        assert Interval(-129, 0).bitwidth == 9

    def test_widening(self):
        grown = Interval(0, 10).widen(Interval(0, 5))
        assert grown.hi == 2**31 - 1
        assert grown.lo == 0
        stable = Interval(0, 5).widen(Interval(0, 5))
        assert stable == Interval(0, 5)


class TestAnalysis:
    def test_constants_exact(self):
        f = parse_function(
            "func @f() {\nentry:\n  %a = li 12\n  ret %a\n}\n"
        )
        info = bitwidth_analysis(f)
        assert info.intervals[vreg("a")] == Interval(12, 12)
        assert info.width(vreg("a")) == 4

    def test_comparison_is_boolean(self, loop):
        info = bitwidth_analysis(loop)
        assert info.intervals[vreg("c")] == BOOL
        assert info.width(vreg("c")) == 1

    def test_add_of_constants(self):
        src = """
        func @f() {
        entry:
          %a = li 100
          %b = li 27
          %c = add %a, %b
          ret %c
        }
        """
        info = bitwidth_analysis(parse_function(src))
        assert info.intervals[vreg("c")] == Interval(127, 127)

    def test_params_unknown(self, straightline):
        info = bitwidth_analysis(straightline)
        assert info.width(vreg("a")) == 32

    def test_loop_counter_widens_and_terminates(self, loop):
        # %i = %i + 1 in a loop must widen rather than iterate 2^31 times.
        info = bitwidth_analysis(loop, max_sweeps=64)
        assert info.intervals[vreg("i")].lo >= 0
        assert info.intervals[vreg("i")].hi == 2**31 - 1

    def test_shift_narrowing(self):
        src = """
        func @f() {
        entry:
          %a = li 255
          %s = li 4
          %b = shr %a, %s
          ret %b
        }
        """
        info = bitwidth_analysis(parse_function(src))
        assert info.intervals[vreg("b")] == Interval(15, 15)
        assert info.width(vreg("b")) == 4

    def test_and_mask_narrowing(self):
        src = """
        func @f(%x) {
        entry:
          %m = li 7
          %b = and %x, %m
          ret %b
        }
        """
        info = bitwidth_analysis(parse_function(src))
        assert info.intervals[vreg("b")].hi <= 7
        assert info.width(vreg("b")) <= 3

    def test_mean_width(self, loop):
        info = bitwidth_analysis(loop)
        assert 1.0 <= info.mean_width() <= 32.0

    def test_unknown_register_defaults_to_word(self, loop):
        info = bitwidth_analysis(loop)
        assert info.width(vreg("never_defined")) == 32
