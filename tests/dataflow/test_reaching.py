"""Reaching definitions on straightline, branching and loop code."""

from repro.dataflow import reaching_definitions
from repro.ir.values import vreg


def test_straightline_single_defs(straightline):
    info = reaching_definitions(straightline)
    sites = info.defs_reaching("entry", 2, vreg("t1"))
    assert sites == {("entry", 1)}


def test_kill_within_block():
    from repro.ir import parse_function

    src = """
    func @f() {
    entry:
      %a = li 1
      %a = li 2
      %b = copy %a
      ret %b
    }
    """
    info = reaching_definitions(parse_function(src))
    # Only the second definition of %a reaches the copy.
    assert info.defs_reaching("entry", 2, vreg("a")) == {("entry", 1)}


def test_merge_at_join(diamond):
    info = reaching_definitions(diamond)
    # %x's incoming (parameter) definition is unaffected, but both arm
    # definitions flow into the join.
    r0 = info.all_def_sites(vreg("r0"))
    r1 = info.all_def_sites(vreg("r1"))
    assert r0 == {("small", 0)}
    assert r1 == {("big", 0)}
    reaching_join = {
        (reg, site)
        for reg, site in info.reach_in["join"]
        if reg in (vreg("r0"), vreg("r1"))
    }
    assert (vreg("r0"), ("small", 0)) in reaching_join
    assert (vreg("r1"), ("big", 0)) in reaching_join


def test_loop_definitions_reach_around(loop):
    info = reaching_definitions(loop)
    # Both the entry li and the body add of %acc reach the loop header.
    sites = info.defs_reaching("head", 0, vreg("acc"))
    assert sites == {("entry", 0), ("body", 1)}


def test_exit_sees_both(loop):
    info = reaching_definitions(loop)
    sites = info.defs_reaching("exit", 0, vreg("acc"))
    assert sites == {("entry", 0), ("body", 1)}
