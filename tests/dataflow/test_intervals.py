"""Linear order and live intervals."""

from repro.dataflow import (
    linear_order,
    live_intervals,
    liveness,
    pressure_profile,
)
from repro.ir.values import vreg


class TestLinearOrder:
    def test_covers_all_instructions(self, nested):
        order = linear_order(nested)
        assert len(order) == nested.instruction_count()

    def test_entry_first(self, loop):
        order = linear_order(loop)
        assert order.block_order[0] == "entry"
        assert order.positions[0] == ("entry", 0)

    def test_index_of_inverse(self, loop):
        order = linear_order(loop)
        for idx, (block, i) in enumerate(order.positions):
            assert order.index_of(block, i) == idx
            assert order.instruction_at(idx) is loop.block(block).instructions[i]

    def test_iteration_protocol(self, straightline):
        order = linear_order(straightline)
        seen = [idx for idx, _inst in order]
        assert seen == list(range(len(order)))


class TestLiveIntervals:
    def test_interval_covers_def_to_last_use(self, straightline):
        intervals = live_intervals(straightline)
        t0 = intervals[vreg("t0")]
        # def at index 0, last use at index 1.
        assert t0.start == 0
        assert t0.end >= 2

    def test_loop_carried_interval_spans_loop(self, loop):
        order = linear_order(loop)
        intervals = live_intervals(loop, order)
        acc = intervals[vreg("acc")]
        # %acc is live from entry through the whole loop to the ret.
        last_index = len(order) - 1
        assert acc.start <= 1
        assert acc.end >= last_index  # ret uses it at the very end

    def test_access_positions_recorded(self, loop):
        intervals = live_intervals(loop)
        i_interval = intervals[vreg("i")]
        assert i_interval.access_count == 6  # 2 defs + 4 uses
        assert i_interval.accesses == sorted(i_interval.accesses)

    def test_density(self, loop):
        intervals = live_intervals(loop)
        # %c lives one instruction (cmp -> br): maximal density.
        c = intervals[vreg("c")]
        assert c.density >= 0.5

    def test_overlap_matches_interference_intuition(self, loop):
        intervals = live_intervals(loop)
        assert intervals[vreg("acc")].overlaps(intervals[vreg("i")])
        assert intervals[vreg("n")].overlaps(intervals[vreg("acc")])

    def test_params_start_at_zero(self, straightline):
        intervals = live_intervals(straightline)
        assert intervals[vreg("a")].start == 0
        assert intervals[vreg("b")].start == 0


class TestPressureProfile:
    def test_profile_length(self, loop):
        order = linear_order(loop)
        profile = pressure_profile(loop, order)
        assert len(profile) == len(order) + 1

    def test_profile_peak_at_least_liveness_pressure(self, loop):
        # Interval pressure over-approximates instantaneous liveness.
        profile = pressure_profile(loop)
        assert max(profile) >= liveness(loop).max_pressure() - 1
