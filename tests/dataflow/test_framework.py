"""Generic solver: directions, meets, convergence guard."""

import pytest

from repro.dataflow.framework import (
    DataflowProblem,
    Direction,
    SetIntersectionProblem,
    SetUnionProblem,
    solve,
)
from repro.errors import DataflowError
from repro.ir import parse_function


class ReachableNamesProblem(SetUnionProblem):
    """Toy forward problem: which block names can have executed."""

    direction = Direction.FORWARD

    def transfer(self, function, block_name, value):
        return value | {block_name}


class NamesToExitProblem(SetUnionProblem):
    """Toy backward problem: which block names may still execute."""

    direction = Direction.BACKWARD

    def transfer(self, function, block_name, value):
        return value | {block_name}


def test_forward_accumulates_paths(diamond):
    result = solve(diamond, ReachableNamesProblem())
    assert result.exit("join") == {"entry", "small", "big", "join"}
    assert result.entry("small") == {"entry"}


def test_forward_loop_reaches_fixed_point(loop):
    result = solve(loop, ReachableNamesProblem())
    assert result.exit("head") >= {"entry", "head", "body"}
    assert result.iterations >= 2  # loop requires at least one extra sweep


def test_backward_collects_successors(diamond):
    result = solve(diamond, NamesToExitProblem())
    # in_values = at block entry (program order).
    assert result.entry("entry") == {"entry", "small", "big", "join"}
    assert result.entry("join") == {"join"}


INFINITE_LOOP_SRC = """
func @forever(%n) {
entry:
  %i = li 0
  jump head
head:
  %i = add %i, 1
  jump head
}
"""


def test_backward_on_exitless_cfg_converges():
    """Regression: a backward problem over a CFG with no exit block must
    still reach a fixed point from the optimistic initial values instead
    of looping or crashing on an empty boundary set."""
    function = parse_function(INFINITE_LOOP_SRC)
    result = solve(function, NamesToExitProblem())
    # Every block flows around the loop through head.
    assert result.entry("head") >= {"head"}
    assert result.entry("entry") >= {"entry", "head"}
    assert result.iterations >= 1


class UnboundedProblem(DataflowProblem):
    """A lattice of infinite height: values grow forever around a loop."""

    direction = Direction.FORWARD

    def boundary(self, function):
        return 0

    def initial(self, function):
        return 0

    def meet(self, values):
        return max(values) if values else 0

    def transfer(self, function, block_name, value):
        return value + 1  # grows without bound through the back edge


def test_non_convergent_problem_raises(loop):
    with pytest.raises(DataflowError, match="did not converge"):
        solve(loop, UnboundedProblem(), max_iterations=10)


class MustPassProblem(SetIntersectionProblem):
    """Toy must-problem: block names on *every* path from entry."""

    direction = Direction.FORWARD

    def universe(self, function):
        return frozenset(function.blocks)

    def transfer(self, function, block_name, value):
        return value | {block_name}


def test_intersection_meet(diamond):
    result = solve(diamond, MustPassProblem())
    # join is reached via small OR big: only entry (and join) are guaranteed.
    assert result.entry("join") == {"entry", "small", "big"} & result.entry("join") | {"entry"}
    assert "small" not in result.entry("join") or "big" not in result.entry("join")
    assert result.exit("join") >= {"entry", "join"}
