"""Available expressions: must-analysis semantics."""

from repro.dataflow import available_expressions, expression_of
from repro.ir import parse_function, parse_instruction


class TestExpressionExtraction:
    def test_binary_is_expression(self):
        expr = expression_of(parse_instruction("%c = add %a, %b"))
        assert expr == ("add", ("%a", "%b"))

    def test_commutative_canonicalization(self):
        a = expression_of(parse_instruction("%c = add %b, %a"))
        b = expression_of(parse_instruction("%c = add %a, %b"))
        assert a == b

    def test_non_commutative_keeps_order(self):
        a = expression_of(parse_instruction("%c = sub %b, %a"))
        b = expression_of(parse_instruction("%c = sub %a, %b"))
        assert a != b

    def test_loads_are_not_expressions(self):
        assert expression_of(parse_instruction("%c = load %a")) is None
        assert expression_of(parse_instruction("%c = li 4")) is None


class TestAvailability:
    def test_expression_available_after_computation(self):
        src = """
        func @f(%a, %b) {
        entry:
          %t = add %a, %b
          jump next
        next:
          %u = add %a, %b
          ret %u
        }
        """
        info = available_expressions(parse_function(src))
        assert ("add", ("%a", "%b")) in info.avail_in["next"]

    def test_redefinition_kills(self):
        src = """
        func @f(%a, %b) {
        entry:
          %t = add %a, %b
          %a = li 0
          jump next
        next:
          ret %a
        }
        """
        info = available_expressions(parse_function(src))
        assert ("add", ("%a", "%b")) not in info.avail_in["next"]

    def test_must_semantics_at_join(self):
        src = """
        func @f(%a, %b, %c) {
        entry:
          br %c, left, right
        left:
          %t = add %a, %b
          %s = mul %a, %b
          jump join
        right:
          %u = add %a, %b
          jump join
        join:
          ret %a
        }
        """
        info = available_expressions(parse_function(src))
        # add computed on both paths; mul only on one.
        assert ("add", ("%a", "%b")) in info.avail_in["join"]
        assert ("mul", ("%a", "%b")) not in info.avail_in["join"]

    def test_entry_has_nothing(self, straightline):
        info = available_expressions(straightline)
        assert info.avail_in["entry"] == frozenset()
