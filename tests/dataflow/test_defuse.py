"""Def-use chains: counts and def→use links."""

from repro.dataflow import def_use_chains
from repro.ir import parse_function
from repro.ir.values import vreg


def test_access_counts(loop):
    chains = def_use_chains(loop)
    # %i: defs in entry + body; uses in head cmp, body mul (twice), body add.
    assert chains.def_count(vreg("i")) == 2
    assert chains.use_count(vreg("i")) == 4
    assert chains.access_count(vreg("i")) == 6


def test_du_links(loop):
    chains = def_use_chains(loop)
    uses_of_entry_def = chains.uses_of_def(vreg("acc"), ("entry", 0))
    # entry def of %acc reaches the body add and the exit ret.
    assert ("body", 1, 0) in uses_of_entry_def
    assert ("exit", 0, 0) in uses_of_entry_def


def test_dead_register_detected():
    src = """
    func @f() {
    entry:
      %dead = li 5
      %live = li 1
      ret %live
    }
    """
    chains = def_use_chains(parse_function(src))
    assert chains.is_dead(vreg("dead"))
    assert not chains.is_dead(vreg("live"))


def test_multiple_uses_same_instruction(straightline):
    chains = def_use_chains(straightline)
    # %a used at entry[0] operand 0 and entry[1] operand 1.
    assert chains.use_count(vreg("a")) == 2


def test_params_have_no_defs(straightline):
    chains = def_use_chains(straightline)
    assert chains.def_count(vreg("a")) == 0
    assert chains.use_count(vreg("a")) > 0
