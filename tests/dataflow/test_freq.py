"""Static execution-frequency estimation."""

import pytest

from repro.dataflow import edge_probabilities, static_profile
from repro.errors import DataflowError
from repro.ir import parse_function


class TestEdgeProbabilities:
    def test_unconditional_edges_are_certain(self, loop):
        probs = edge_probabilities(loop)
        assert probs[("entry", "head")] == 1.0
        assert probs[("body", "head")] == 1.0

    def test_loop_branch_favours_staying(self, loop):
        probs = edge_probabilities(loop, loop_back_prob=0.9)
        assert probs[("head", "body")] == pytest.approx(0.9)
        assert probs[("head", "exit")] == pytest.approx(0.1)

    def test_non_loop_branch_splits_evenly(self, diamond):
        probs = edge_probabilities(diamond)
        assert probs[("entry", "small")] == pytest.approx(0.5)
        assert probs[("entry", "big")] == pytest.approx(0.5)

    def test_outgoing_probabilities_sum_to_one(self, nested):
        probs = edge_probabilities(nested)
        outgoing: dict[str, float] = {}
        for (src, _dst), p in probs.items():
            outgoing[src] = outgoing.get(src, 0.0) + p
        for block, total in outgoing.items():
            assert total == pytest.approx(1.0), block

    def test_invalid_prob_rejected(self, loop):
        with pytest.raises(DataflowError):
            edge_probabilities(loop, loop_back_prob=1.0)


class TestBlockFrequencies:
    def test_entry_is_one(self, loop, diamond, nested):
        for f in (loop, diamond, nested):
            assert static_profile(f).block_freq["entry"] == pytest.approx(1.0)

    def test_loop_trip_count(self, loop):
        profile = static_profile(loop, loop_back_prob=0.9)
        # Expected header executions: 1 / (1 - 0.9) = 10.
        assert profile.block_freq["head"] == pytest.approx(10.0)
        assert profile.block_freq["body"] == pytest.approx(9.0)
        assert profile.block_freq["exit"] == pytest.approx(1.0)

    def test_nested_loops_multiply(self, nested):
        profile = static_profile(nested, loop_back_prob=0.9)
        # Inner body ≈ outer trips × inner trips.
        assert profile.block_freq["ibody"] > 5 * profile.block_freq["oinit"]

    def test_diamond_splits(self, diamond):
        profile = static_profile(diamond)
        assert profile.block_freq["small"] == pytest.approx(0.5)
        assert profile.block_freq["big"] == pytest.approx(0.5)
        assert profile.block_freq["join"] == pytest.approx(1.0)

    def test_edge_freq(self, loop):
        profile = static_profile(loop)
        assert profile.edge_freq("head", "body") == pytest.approx(
            profile.block_freq["head"] * 0.9
        )

    def test_weighted_instruction_total(self, loop):
        profile = static_profile(loop)
        total = profile.total_weighted_instructions()
        manual = sum(
            profile.block_freq[name] * len(block.instructions)
            for name, block in loop.blocks.items()
        )
        assert total == pytest.approx(manual)


class TestPathologies:
    def test_infinite_loop_damped(self):
        src = """
        func @spin() {
        entry:
          jump spin
        spin:
          %x = li 1
          jump spin
        }
        """
        profile = static_profile(parse_function(src))
        assert profile.block_freq["spin"] > 1.0  # finite, damped

    def test_branch_to_same_target(self):
        src = """
        func @f(%c) {
        entry:
          br %c, out, out
        out:
          ret
        }
        """
        profile = static_profile(parse_function(src))
        assert profile.block_freq["out"] == pytest.approx(1.0)
