"""Parser robustness fuzzing.

The contract: for *any* input text, `parse_module` either succeeds or
raises :class:`ParseError` — never an unrelated exception.  Hypothesis
drives both arbitrary text and structured mutations of valid programs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.ir import parse_module, print_function
from repro.workloads import random_program

_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(text=st.text(max_size=400))
@_SETTINGS
def test_arbitrary_text_never_crashes(text):
    try:
        parse_module(text)
    except ParseError:
        pass  # the only acceptable failure mode


@given(
    text=st.text(
        alphabet=st.sampled_from(list("funcentry %@rjlabd=+-,(){}:0123456789 \n")),
        max_size=300,
    )
)
@_SETTINGS
def test_ir_flavoured_text_never_crashes(text):
    try:
        parse_module(text)
    except ParseError:
        pass


@given(seed=st.integers(0, 10_000), cut=st.integers(0, 100))
@_SETTINGS
def test_truncated_valid_programs_never_crash(seed, cut):
    """Prefixes of valid programs parse or raise ParseError cleanly."""
    text = print_function(random_program(seed=seed, num_blocks=3))
    lines = text.splitlines()
    truncated = "\n".join(lines[: max(1, len(lines) - cut % max(1, len(lines)))])
    try:
        parse_module(truncated)
    except ParseError:
        pass


@given(
    seed=st.integers(0, 10_000),
    position=st.integers(0, 500),
    junk=st.text(max_size=10),
)
@_SETTINGS
def test_corrupted_valid_programs_never_crash(seed, position, junk):
    """Splicing junk into a valid program parses or raises ParseError."""
    text = print_function(random_program(seed=seed, num_blocks=2))
    pos = position % (len(text) + 1)
    corrupted = text[:pos] + junk + text[pos:]
    try:
        parse_module(corrupted)
    except ParseError:
        pass
