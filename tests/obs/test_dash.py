"""repro.obs.dash — dashboard state machine, replay, heat playback.

The dashboard is stdlib-only and consumes plain dicts; these tests
feed it synthetic and real event streams and assert the rendered
panels, plus the `repro dash` CLI smoke contract (non-empty stream →
exit 0, empty stream → exit 1).
"""

import io
import json
import math

from repro.cli import main
from repro.obs.dash import (
    DashboardState,
    follow,
    heat_frames,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_low(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_monotone_ramp_uses_the_full_range(self):
        text = sparkline([0.0, 1.0, 2.0, 3.0])
        assert text[0] == "▁" and text[-1] == "█"

    def test_infinite_first_sweep_marks_caret(self):
        assert sparkline([math.inf, 1.0, 0.0]).startswith("^")
        assert sparkline([math.inf, math.inf]) == "^^"

    def test_width_truncates_to_the_tail(self):
        assert len(sparkline(list(range(100)), width=10)) == 10


def _frame(event, job_id="job-1"):
    return {"frame": "event", "job_id": job_id, "seq": 0, "event": event}


class TestDashboardState:
    def test_sweep_then_kernel_builds_a_labeled_series(self):
        state = DashboardState()
        for delta in (math.inf, 1.0, 0.1, 0.01):
            assert state.consume(_frame({"event": "sweep",
                                         "delta": delta}))
        assert state.consume(_frame({"event": "kernel", "name": "fir",
                                     "index": 1, "total": 3}))
        text = state.render()
        assert "fir" in text and "4 sweeps" in text
        assert "kernels 1/3" in text

    def test_bare_events_and_envelopes_count(self):
        state = DashboardState()
        assert state.consume({"event": "sweep", "delta": 0.5,
                              "job_id": "j"})
        assert state.consume({"request": {"kind": "suite"}, "ok": True,
                              "job_id": "j"})
        assert state.envelopes == 1
        assert state.jobs["j"] == "done"
        assert not state.consume({"who": "knows"})
        assert not state.consume("not a dict")
        assert not state.consume({"event": "martian"})

    def test_shard_retry_and_obs_fold_into_worker_panel(self):
        state = DashboardState()
        state.consume(_frame({"event": "shard", "index": 0,
                              "worker": "127.0.0.1:7601", "ok": True,
                              "kernels": 4,
                              "wall_time_seconds": 2.0}))
        state.consume(_frame({"event": "retry", "attempt": 1,
                              "worker": "127.0.0.1:7602"}))
        state.consume(_frame({"event": "obs", "metrics": {
            "counters": {"cluster.shards.127.0.0.1:7601": 5,
                         "cluster.retries.127.0.0.1:7602": 2},
        }}))
        text = state.render()
        assert "workers:" in text
        assert "127.0.0.1:7601" in text and "127.0.0.1:7602" in text
        # obs counters lift the totals a late-attached dash missed.
        assert state.workers["127.0.0.1:7601"]["shards"] == 5
        assert state.workers["127.0.0.1:7602"]["retries"] == 2
        # throughput = kernels / wall
        assert "2.0/s" in text

    def test_batch_and_status_events(self):
        state = DashboardState()
        state.consume(_frame({"event": "batch", "evaluated": 24,
                              "best_score": 1.25}))
        state.consume(_frame({"event": "status", "status": "running"}))
        text = state.render()
        assert "24 candidate(s)" in text and "1.2500" in text
        assert state.jobs["job-1"] == "running"

    def test_series_bounded_by_max_series(self):
        state = DashboardState(max_series=2)
        for n in range(5):
            state.consume(_frame({"event": "sweep", "delta": 1.0}))
            state.consume(_frame({"event": "kernel", "name": f"k{n}"}))
        assert len(state._series) == 2
        assert "k4" in state._series

    def test_duplicate_kernel_names_stay_distinct(self):
        state = DashboardState()
        for _ in range(2):
            state.consume(_frame({"event": "sweep", "delta": 1.0}))
            state.consume(_frame({"event": "kernel", "name": "fib"}))
        assert set(state._series) == {"fib", "fib#2"}


class TestFollow:
    def test_follow_consumes_and_redraws(self):
        lines = [json.dumps(_frame({"event": "sweep", "delta": d}))
                 for d in (1.0, 0.5, 0.1)]
        lines.insert(1, "not json at all")
        lines.insert(0, "")
        out = io.StringIO()
        state = follow(lines, out=out, every=2)
        assert state.events == 3
        assert "repro dash" in out.getvalue()
        # every=2 → one interim redraw plus the final frame
        assert out.getvalue().count("repro dash") == 2


class TestHeatFrames:
    def test_suite_report_playback(self):
        report = {
            "schema": "repro.suite/1",
            "items": [
                {"name": "fir", "peak_delta_kelvin": 2.0},
                {"name": "iir", "peak_delta_kelvin": 4.0},
                {"name": "fib", "peak_delta_kelvin": 1.0},
            ],
        }
        frames = heat_frames(report)
        assert len(frames) == 3
        assert frames[0].startswith("[  1/3]")
        assert "fir" in frames[0] and "2.00K" in frames[0]
        # The hottest kernel renders the top ramp glyph.
        assert "█" in frames[1]

    def test_real_suite_reports_key_records_under_results(self):
        # `repro suite --json` writes repro.suite/1 with a "results"
        # list, not "items" — playback must read both spellings.
        report = {
            "schema": "repro.suite/1",
            "results": [
                {"name": "fir", "peak_delta_kelvin": 2.0},
                {"name": "iir", "peak_delta_kelvin": 4.0},
            ],
        }
        frames = heat_frames(report)
        assert len(frames) == 2 and "iir" in frames[1]

    def test_pipeline_stages_and_empty_report(self):
        assert heat_frames({"schema": "repro.suite/1", "items": []}) == []
        frames = heat_frames({
            "stages": [{"function": "f0", "peak_delta_kelvin": 1.0}],
        })
        assert len(frames) == 1 and "f0" in frames[0]


class TestCLI:
    def _frames_file(self, tmp_path, count=30):
        path = tmp_path / "frames.jsonl"
        with open(path, "w") as handle:
            for n in range(count):
                handle.write(json.dumps(_frame(
                    {"event": "sweep", "delta": 1.0 / (n + 1)}
                )) + "\n")
            handle.write(json.dumps(_frame(
                {"event": "kernel", "name": "fir", "total": 1}
            )) + "\n")
        return path

    def test_replay_renders_and_exits_zero(self, tmp_path, capsys):
        path = self._frames_file(tmp_path)
        assert main(["dash", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro dash" in out and "fir" in out

    def test_empty_replay_exits_one(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["dash", "--replay", str(path)]) == 1
        assert "no events consumed" in capsys.readouterr().err

    def test_playback_exits_zero(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        report.write_text(json.dumps({
            "schema": "repro.suite/1",
            "items": [{"name": "fir", "peak_delta_kelvin": 2.0}],
        }))
        assert main(["dash", "--playback", str(report)]) == 0
        assert "fir" in capsys.readouterr().out

    def test_playback_without_points_exits_one(self, tmp_path):
        report = tmp_path / "report.json"
        report.write_text(json.dumps({"schema": "repro.suite/1"}))
        assert main(["dash", "--playback", str(report)]) == 1

    def test_attach_requires_job(self, capsys):
        assert main(["dash", "--attach", "127.0.0.1:1"]) == 1
        assert "--job" in capsys.readouterr().err
