"""repro.obs.store — trend store, rolling-baseline deltas, CI gate.

Acceptance (PR 10): ``repro bench trend`` ingests reports from 2+
commits and computes per-metric deltas; ``--gate`` passes on noise,
fails (exit 4) on a synthetic 2-commit sustained slowdown; a single
noisy commit never fails the gate.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs.store import (
    KNOWN_SCHEMAS,
    TREND_SCHEMA,
    TrendStore,
    compute_trend,
    flatten_metrics,
    metric_direction,
    render_results,
    render_trend,
    scan_results,
)


def _records(values, metric="timings.wall_seconds",
             schema="repro.bench-engine/1"):
    return [
        {"commit": f"c{i}", "schema": schema, "metric": metric,
         "value": value}
        for i, value in enumerate(values)
    ]


class TestFlatten:
    def test_numeric_leaves_to_dotted_paths(self):
        payload = {
            "schema": "repro.bench-engine/1",
            "delta": 0.01,
            "headline": {"compiled_speedup_vs_stepped": 6.9},
            "results": [
                {"name": "fir", "wall_seconds": 1.5, "converged": True},
                {"name": "iir", "wall_seconds": 2.5},
            ],
        }
        flat = flatten_metrics(payload)
        assert flat["delta"] == 0.01
        assert flat["headline.compiled_speedup_vs_stepped"] == 6.9
        assert flat["results.fir.wall_seconds"] == 1.5
        assert flat["results.iir.wall_seconds"] == 2.5
        # Booleans are assertions, not trends; schema is provenance.
        assert not any("converged" in key for key in flat)
        assert "schema" not in flat

    def test_meta_block_and_provenance_keys_never_trend(self):
        flat = flatten_metrics({
            "schema": "x/1",
            "meta": {"commit": "abc", "python": "3.11"},
            "timestamp": 12345,
            "value": 2.0,
        })
        assert flat == {"value": 2.0}

    def test_unlabeled_list_entries_use_indices(self):
        flat = flatten_metrics({"xs": [1.0, 2.0]})
        assert flat == {"xs.0": 1.0, "xs.1": 2.0}


class TestDirection:
    def test_direction_heuristics(self):
        assert metric_direction("results.fir.wall_seconds") == "lower"
        assert metric_direction("recovery.retry_overhead_x") == "lower"
        assert metric_direction("cluster.retries") == "lower"
        assert metric_direction("headline.speedup") == "higher"
        assert metric_direction("events.frames_per_second") == "higher"
        assert metric_direction("peak_delta_kelvin") is None


class TestStore:
    def test_ingest_requires_a_schema(self, tmp_path):
        store = TrendStore(tmp_path / "trends.jsonl")
        with pytest.raises(ReproError):
            store.ingest({"wall_seconds": 1.0})

    def test_ingest_round_trip_and_commit_order(self, tmp_path):
        store = TrendStore(tmp_path / "trends.jsonl")
        for commit, value in (("aaa", 1.0), ("bbb", 1.5)):
            store.ingest(
                {"schema": "repro.bench-engine/1",
                 "timings": {"wall_seconds": value}},
                commit=commit,
            )
        records = store.load()
        assert [r["commit"] for r in records] == ["aaa", "bbb"]
        assert all(r["metric"] == "timings.wall_seconds" for r in records)
        assert store.commits() == ["aaa", "bbb"]

    def test_commit_defaults_to_the_meta_block(self, tmp_path):
        store = TrendStore(tmp_path / "trends.jsonl")
        store.ingest({"schema": "x/1", "meta": {"commit": "frommeta"},
                      "v": 1.0})
        assert store.commits() == ["frommeta"]

    def test_ingest_file_and_bad_lines_skipped(self, tmp_path):
        report = tmp_path / "BENCH_x.json"
        report.write_text(json.dumps(
            {"schema": "repro.bench-engine/1", "timings": {"a": 1.0}}
        ))
        store = TrendStore(tmp_path / "trends.jsonl")
        assert store.ingest_file(report, commit="c1") == 1
        # An interrupted append must not poison the store.
        with open(store.path, "a") as handle:
            handle.write('{"truncated": \n')
        assert len(store.load()) == 1
        with pytest.raises(ReproError):
            store.ingest_file(tmp_path / "missing.json")


class TestComputeTrend:
    def test_noise_passes_the_gate(self):
        verdict = compute_trend(
            _records([1.0, 1.01, 0.99, 1.0, 1.01, 0.995])
        )
        assert verdict["schema"] == TREND_SCHEMA
        assert verdict["gate"]["pass"]
        assert verdict["sustained"] == []
        (entry,) = verdict["metrics"]
        assert entry["direction"] == "lower"
        assert not entry["regressed"]

    def test_single_spike_regresses_but_passes(self):
        verdict = compute_trend(
            _records([1.0, 1.01, 0.99, 1.0, 1.0, 1.5])
        )
        (entry,) = verdict["metrics"]
        assert entry["regressed"] and not entry["sustained"]
        assert verdict["regressions"] and not verdict["sustained"]
        assert verdict["gate"]["pass"]

    def test_two_consecutive_regressions_fail_the_gate(self):
        verdict = compute_trend(
            _records([1.0, 1.01, 0.99, 1.0, 1.5, 1.52])
        )
        (entry,) = verdict["metrics"]
        assert entry["sustained"]
        assert entry["consecutive_regressions"] >= 2
        assert not verdict["gate"]["pass"]
        assert "sustained" in verdict["gate"]["reason"]

    def test_higher_is_better_regresses_downward(self):
        verdict = compute_trend(
            _records([10.0, 10.1, 9.9, 5.0, 5.0],
                     metric="headline.speedup")
        )
        (entry,) = verdict["metrics"]
        assert entry["direction"] == "higher"
        assert entry["sustained"]
        assert not verdict["gate"]["pass"]

    def test_undirected_metrics_never_gate(self):
        verdict = compute_trend(
            _records([1.0, 1.0, 99.0, 99.5], metric="peak_delta_kelvin")
        )
        (entry,) = verdict["metrics"]
        assert entry["direction"] is None and not entry["regressed"]
        assert verdict["gate"]["pass"]

    def test_insufficient_history_passes(self):
        verdict = compute_trend(_records([1.0]))
        assert verdict["gate"]["pass"]
        assert "insufficient history" in verdict["gate"]["reason"]
        assert verdict["metrics"] == []

    def test_last_record_wins_per_commit(self):
        records = _records([1.0, 1.0, 1.0])
        records.append(dict(records[-1], value=9.9))
        verdict = compute_trend(records)
        (entry,) = verdict["metrics"]
        assert entry["latest"] == 9.9

    def test_render_trend_mentions_the_gate(self):
        verdict = compute_trend(
            _records([1.0, 1.01, 0.99, 1.0, 1.5, 1.52])
        )
        text = render_trend(verdict)
        assert "SUSTAINED" in text
        assert "gate: FAIL" in text
        ok = render_trend(compute_trend(_records([1.0, 1.0, 1.0])))
        assert "gate: PASS" in ok


class TestScanResults:
    def test_scan_flags_drift(self, tmp_path):
        (tmp_path / "good.json").write_text(json.dumps(
            {"schema": "repro.bench-engine/1", "v": 1.0}
        ))
        (tmp_path / "old.json").write_text(json.dumps(
            {"schema": "repro.service/1"}
        ))
        (tmp_path / "future.json").write_text(json.dumps(
            {"schema": "repro.suite/9"}
        ))
        (tmp_path / "alien.json").write_text(json.dumps(
            {"schema": "acme.results/1"}
        ))
        (tmp_path / "broken.json").write_text("{nope")
        status = {row["file"]: row["status"]
                  for row in scan_results(tmp_path)}
        assert status == {
            "good.json": "ok",
            "old.json": "stale",
            "future.json": "newer",
            "alien.json": "unknown",
            "broken.json": "invalid",
        }
        text = render_results(scan_results(tmp_path))
        assert "stale" in text and "known schemas" in text
        assert "repro.obs-trend/1" in text

    def test_every_bench_family_is_known(self):
        for family in ("repro.bench-engine", "repro.bench-fleet",
                       "repro.bench-incremental", "repro.bench-pipeline",
                       "repro.bench-schedule", "repro.bench-service",
                       "repro.bench-sparse", "repro.suite",
                       "repro.pipeline", "repro.schedule",
                       "repro.service"):
            assert family in KNOWN_SCHEMAS


class TestCLI:
    """`repro bench` end to end, including the --gate exit code."""

    def _write_report(self, path, value):
        path.write_text(json.dumps({
            "schema": "repro.bench-engine/1",
            "timings": {"wall_seconds": value},
        }))

    def test_bench_list(self, tmp_path, capsys):
        self._write_report(tmp_path / "BENCH_engine.json", 1.0)
        assert main(["bench", "list", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_engine.json" in out and "ok" in out

    def test_bench_ingest_then_trend(self, tmp_path, capsys):
        store = tmp_path / "trends.jsonl"
        report = tmp_path / "r.json"
        for commit, value in (("c1", 1.0), ("c2", 1.01)):
            self._write_report(report, value)
            assert main(["bench", "ingest", str(report),
                         "--store", str(store),
                         "--commit", commit]) == 0
        verdict_path = tmp_path / "verdict.json"
        assert main(["bench", "trend", "--store", str(store),
                     "--gate", "--json", str(verdict_path)]) == 0
        out = capsys.readouterr().out
        assert "gate: PASS" in out
        verdict = json.loads(verdict_path.read_text())
        assert verdict["schema"] == TREND_SCHEMA
        assert verdict["commits"] == ["c1", "c2"]

    def test_gate_fails_on_sustained_slowdown(self, tmp_path):
        store = tmp_path / "trends.jsonl"
        report = tmp_path / "r.json"
        # Two healthy commits, then two slow ones: sustained → exit 4.
        for commit, value in (("c1", 1.0), ("c2", 1.0),
                              ("c3", 1.5), ("c4", 1.5)):
            self._write_report(report, value)
            assert main(["bench", "trend", "--store", str(store),
                         "--ingest", str(report),
                         "--commit", commit, "--gate"]) in (0, 4)
        assert main(["bench", "trend", "--store", str(store),
                     "--gate"]) == 4
        # Without --gate the same verdict is informational only.
        assert main(["bench", "trend", "--store", str(store)]) == 0

    def test_gate_passes_on_a_single_noisy_commit(self, tmp_path):
        store = tmp_path / "trends.jsonl"
        report = tmp_path / "r.json"
        for commit, value in (("c1", 1.0), ("c2", 1.0), ("c3", 1.0),
                              ("c4", 1.5)):
            self._write_report(report, value)
            assert main(["bench", "ingest", str(report),
                         "--store", str(store),
                         "--commit", commit]) == 0
        assert main(["bench", "trend", "--store", str(store),
                     "--gate"]) == 0

    def test_real_bench_artifacts_ingest(self, tmp_path):
        """The archived results under benchmarks/results are ingestible
        as-is — the store understands the repo's own artifacts."""
        import pathlib

        results = (pathlib.Path(__file__).resolve().parents[2]
                   / "benchmarks" / "results")
        reports = sorted(results.glob("BENCH_*.json"))
        assert reports, "archived bench artifacts are gone"
        store = TrendStore(tmp_path / "trends.jsonl")
        for commit in ("one", "two"):
            for report in reports:
                assert store.ingest_file(report, commit=commit) > 0
        verdict = store.trend()
        assert len(verdict["commits"]) == 2
        assert verdict["metrics"]  # identical commits: deltas of zero
        assert verdict["gate"]["pass"]
