"""repro.obs.metrics — the process-wide registry.

Acceptance: disabled registries cost one boolean and record nothing;
enabled registries accumulate counters/gauges/histograms and snapshot
deterministically; the module singleton flips live.
"""

import threading

from repro.obs import MetricsRegistry, default_registry, enable_metrics
from repro.obs.metrics import obs_event


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry()
        assert not registry.enabled
        registry.inc("a")
        registry.gauge("b", 1.5)
        registry.observe("c", 0.25)
        with registry.time("d"):
            pass
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}
        assert registry.counter("a") == 0

    def test_render_empty(self):
        assert "no metrics recorded" in MetricsRegistry().render()


class TestEnabled:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("jobs")
        registry.inc("jobs", 2)
        registry.gauge("delta", 0.5)
        registry.gauge("delta", 0.25)          # last write wins
        registry.observe("wall", 1.0)
        registry.observe("wall", 3.0)
        snapshot = registry.snapshot()
        assert registry.counter("jobs") == 3
        assert snapshot["counters"] == {"jobs": 3}
        assert snapshot["gauges"] == {"delta": 0.25}
        hist = snapshot["histograms"]["wall"]
        assert hist["count"] == 2
        assert hist["total"] == 4.0
        assert hist["min"] == 1.0 and hist["max"] == 3.0
        assert hist["mean"] == 2.0

    def test_timer_span_observes(self):
        registry = MetricsRegistry(enabled=True)
        with registry.time("span_seconds"):
            pass
        hist = registry.snapshot()["histograms"]["span_seconds"]
        assert hist["count"] == 1
        assert hist["min"] >= 0.0

    def test_snapshot_is_detached_and_sorted(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("z")
        registry.inc("a")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        registry.inc("a")
        assert snapshot["counters"]["a"] == 1  # not a live view

    def test_reset_clears_everything(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("a")
        registry.observe("b", 1.0)
        registry.gauge("c", 2.0)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert registry.enabled  # reset clears data, not enablement

    def test_render_tables_every_kind(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("hits")
        registry.gauge("last_delta", 0.125)
        registry.observe("wall_seconds", 0.5)
        text = registry.render()
        assert "hits" in text and "counter" in text
        assert "last_delta" in text and "gauge" in text
        assert "wall_seconds" in text and "histogram" in text

    def test_concurrent_incs_do_not_lose_counts(self):
        registry = MetricsRegistry(enabled=True)

        def work():
            for _ in range(1000):
                registry.inc("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("n") == 4000


class TestSingleton:
    def test_default_registry_is_one_object(self):
        assert default_registry() is default_registry()

    def test_enable_metrics_flips_the_singleton(self):
        registry = default_registry()
        was = registry.enabled
        try:
            enable_metrics()
            assert registry.enabled
            enable_metrics(False)
            assert not registry.enabled
        finally:
            registry.set_enabled(was)

    def test_default_registry_starts_disabled(self):
        # The bit-identity contract hinges on this default.
        assert not MetricsRegistry().enabled


class TestObsEvent:
    def test_obs_event_shape(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("tdfa.sweeps")
        event = obs_event(registry)
        assert event["event"] == "obs"
        assert event["metrics"]["counters"] == {"tdfa.sweeps": 1}
