"""Local CSE pass."""

import pytest

from repro.ir import Opcode, parse_function, verify_function
from repro.opt import LocalCSEPass
from repro.sim import Interpreter
from repro.workloads import load, random_loop_program


class TestFolding:
    def test_folds_duplicate_expression(self):
        src = """
        func @f(%a, %b) {
        entry:
          %x = add %a, %b
          %y = add %a, %b
          %z = mul %x, %y
          ret %z
        }
        """
        f = parse_function(src)
        transformed, report = LocalCSEPass().run(f)
        assert report.details["folded"] == 1
        copies = [i for i in transformed.instructions() if i.opcode is Opcode.COPY]
        assert len(copies) == 1
        interp = Interpreter()
        assert (
            interp.run(transformed, args=[3, 4]).return_value
            == interp.run(f, args=[3, 4]).return_value
        )

    def test_commutative_operands_fold(self):
        src = """
        func @f(%a, %b) {
        entry:
          %x = add %a, %b
          %y = add %b, %a
          %z = sub %x, %y
          ret %z
        }
        """
        transformed, report = LocalCSEPass().run(parse_function(src))
        assert report.details["folded"] == 1

    def test_redefinition_blocks_fold(self):
        src = """
        func @f(%a, %b) {
        entry:
          %x = add %a, %b
          %a = li 0
          %y = add %a, %b
          %z = sub %x, %y
          ret %z
        }
        """
        f = parse_function(src)
        transformed, report = LocalCSEPass().run(f)
        assert report.details["folded"] == 0
        interp = Interpreter()
        assert (
            interp.run(transformed, args=[5, 6]).return_value
            == interp.run(f, args=[5, 6]).return_value
        )

    def test_loads_not_folded(self):
        src = """
        func @f(%p) {
        entry:
          %x = load %p
          %y = load %p
          %z = add %x, %y
          ret %z
        }
        """
        _t, report = LocalCSEPass().run(parse_function(src))
        assert report.details["folded"] == 0

    def test_cross_block_not_folded(self):
        # Local pass: expressions do not survive block boundaries.
        src = """
        func @f(%a, %b) {
        entry:
          %x = add %a, %b
          jump next
        next:
          %y = add %a, %b
          %z = sub %x, %y
          ret %z
        }
        """
        _t, report = LocalCSEPass().run(parse_function(src))
        assert report.details["folded"] == 0


class TestSemantics:
    @pytest.mark.parametrize("name", ["fir", "dct8", "sort"])
    def test_suite_equivalence(self, name):
        wl = load(name)
        transformed, _report = LocalCSEPass().run(wl.function)
        verify_function(transformed)
        result = Interpreter().run(
            transformed, args=wl.args, memory=dict(wl.memory)
        )
        assert result.return_value == wl.expected_return

    @pytest.mark.parametrize("seed", range(5))
    def test_random_programs(self, seed):
        wl = random_loop_program(seed=seed)
        transformed, _report = LocalCSEPass().run(wl.function)
        verify_function(transformed)
        assert Interpreter().run(transformed).return_value == wl.expected_return
