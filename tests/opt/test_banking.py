"""Bank switch-off analysis."""

import pytest

from repro.arch import banked_rf64, rf64
from repro.errors import ThermalModelError
from repro.opt import analyze_banking
from repro.regalloc import (
    ChessboardPolicy,
    FirstFreePolicy,
    RoundRobinPolicy,
    allocate_linear_scan,
)
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return banked_rf64(banks=4)


class TestBankingReport:
    def test_first_free_leaves_banks_idle(self, machine):
        wl = load("fir")  # ~14 registers: fits in bank 0-1 under first-free
        allocation = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
        report = analyze_banking(allocation.function, machine)
        assert report.banks == 4
        assert report.mean_idle > 0.25
        assert report.leakage_saved > 0.0

    def test_round_robin_destroys_idleness(self, machine):
        wl = load("fir")
        ff = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
        rr = allocate_linear_scan(wl.function, machine, RoundRobinPolicy())
        idle_ff = analyze_banking(ff.function, machine).mean_idle
        idle_rr = analyze_banking(rr.function, machine).mean_idle
        assert idle_rr < idle_ff

    def test_chessboard_touches_many_banks(self, machine):
        wl = load("fir")
        cb = allocate_linear_scan(wl.function, machine, ChessboardPolicy())
        report = analyze_banking(cb.function, machine)
        # The cycling chessboard spreads across the RF: little idleness.
        assert report.mean_idle < 0.5

    def test_idle_fractions_in_unit_interval(self, machine):
        wl = load("iir")
        allocation = allocate_linear_scan(wl.function, machine)
        report = analyze_banking(allocation.function, machine)
        assert all(0.0 <= f <= 1.0 for f in report.idle_fraction)
        assert len(report.idle_fraction) == 4

    def test_unbanked_rf_reports_zero(self):
        plain = rf64()
        wl = load("fib")
        allocation = allocate_linear_scan(wl.function, plain)
        report = analyze_banking(allocation.function, plain)
        assert report.mean_idle == 0.0
        assert report.leakage_saved == 0.0

    def test_virtual_function_rejected(self, machine):
        with pytest.raises(ThermalModelError, match="allocated"):
            analyze_banking(load("fib").function, machine)

    def test_str_rendering(self, machine):
        wl = load("fib")
        allocation = allocate_linear_scan(wl.function, machine)
        text = str(analyze_banking(allocation.function, machine))
        assert "banks=4" in text
