"""Each §4 optimization pass: behaviour + semantics preservation.

Every transformation is checked two ways: the structural effect it
promises (copies inserted, loads forwarded, NOPs placed, ...) and
bit-exact program equivalence through the interpreter.
"""

import pytest

from repro.arch import rf64
from repro.core import ExactPlacement, analyze
from repro.ir import Opcode, parse_function, verify_function
from repro.ir.values import vreg
from repro.opt import (
    DeadCodeEliminationPass,
    NopInsertionPass,
    ReassignPass,
    RegisterPromotionPass,
    SpillCriticalPass,
    SplitLiveRangesPass,
    ThermalSchedulePass,
    min_reuse_distance,
)
from repro.regalloc import allocate_linear_scan
from repro.sim import Interpreter
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


def assert_equivalent(workload, transformed):
    interp = Interpreter()
    expected = interp.run(
        workload.function, args=workload.args, memory=dict(workload.memory)
    ).return_value
    actual = interp.run(
        transformed, args=workload.args, memory=dict(workload.memory)
    ).return_value
    assert actual == expected == workload.expected_return


class TestSpillCritical:
    def test_spills_targets_and_preserves_semantics(self):
        wl = load("fir")
        targets = tuple(sorted(wl.function.virtual_registers(), key=str)[:2])
        transformed, report = SpillCriticalPass(targets=targets).run(wl.function)
        assert report.changed
        verify_function(transformed)
        assert_equivalent(wl, transformed)

    def test_noop_without_valid_targets(self, loop):
        transformed, report = SpillCriticalPass(targets=(vreg("ghost"),)).run(loop)
        assert not report.changed
        assert str(transformed) == str(loop)


class TestSplitLiveRanges:
    def test_inserts_copies(self):
        wl = load("fir")
        # The FIR coefficient registers are used once per iteration each;
        # split the accumulator, which is used many times per block.
        from repro.dataflow import def_use_chains

        chains = def_use_chains(wl.function)
        hot = max(
            wl.function.virtual_registers(),
            key=lambda r: chains.use_count(r),
        )
        transformed, report = SplitLiveRangesPass(
            targets=(hot,), chunk=2
        ).run(wl.function)
        assert report.changed
        assert report.details["copies"] >= 1
        verify_function(transformed)
        assert_equivalent(wl, transformed)

    def test_alias_resets_at_redefinition(self):
        src = """
        func @f(%x) {
        entry:
          %a = add %x, %x
          %b = add %a, %a
          %c = add %a, %a
          %a = add %c, %b
          %d = add %a, %a
          ret %d
        }
        """
        f = parse_function(src)
        transformed, _report = SplitLiveRangesPass(
            targets=(vreg("a"),), chunk=1
        ).run(f)
        verify_function(transformed)
        interp = Interpreter()
        assert (
            interp.run(transformed, args=[3]).return_value
            == interp.run(f, args=[3]).return_value
        )

    def test_whole_suite_equivalence(self):
        for name in ("iir", "crc32", "dct8"):
            wl = load(name)
            targets = tuple(sorted(wl.function.virtual_registers(), key=str)[:3])
            transformed, _ = SplitLiveRangesPass(targets=targets).run(wl.function)
            verify_function(transformed)
            assert_equivalent(wl, transformed)


class TestThermalSchedule:
    def test_preserves_semantics_on_suite(self):
        for name in ("dct8", "iir", "viterbi", "sort"):
            wl = load(name)
            transformed, _report = ThermalSchedulePass().run(wl.function)
            verify_function(transformed)
            assert_equivalent(wl, transformed)

    def test_increases_reuse_distance_on_ilp_kernel(self):
        wl = load("dct8")  # high ILP: the scheduler has freedom
        before = min_reuse_distance(wl.function)
        transformed, report = ThermalSchedulePass().run(wl.function)
        after = min_reuse_distance(transformed)
        assert after >= before

    def test_dependences_respected(self):
        src = """
        func @f(%x) {
        entry:
          %a = add %x, %x
          %b = mul %a, %x
          %c = sub %b, %a
          ret %c
        }
        """
        f = parse_function(src)
        transformed, _report = ThermalSchedulePass().run(f)
        interp = Interpreter()
        assert (
            interp.run(transformed, args=[5]).return_value
            == interp.run(f, args=[5]).return_value
        )


class TestPromote:
    def test_forwards_repeated_loads(self):
        src = """
        func @f(%p) {
        entry:
          %a = load %p
          %b = load %p
          %c = add %a, %b
          ret %c
        }
        """
        f = parse_function(src)
        transformed, report = RegisterPromotionPass().run(f)
        assert report.details["loads_promoted"] == 1
        loads = sum(
            1 for i in transformed.instructions() if i.opcode is Opcode.LOAD
        )
        assert loads == 1
        interp = Interpreter()
        assert (
            interp.run(transformed, args=[7], memory={7: 13}).return_value
            == interp.run(f, args=[7], memory={7: 13}).return_value
        )

    def test_store_kills_promotion(self):
        src = """
        func @f(%p, %q) {
        entry:
          %a = load %p
          store %q, %a
          %b = load %p
          %c = add %a, %b
          ret %c
        }
        """
        f = parse_function(src)
        transformed, report = RegisterPromotionPass().run(f)
        assert report.details["loads_promoted"] == 0
        # Aliasing check: q may equal p.
        interp = Interpreter()
        assert (
            interp.run(transformed, args=[7, 7], memory={7: 5}).return_value
            == interp.run(f, args=[7, 7], memory={7: 5}).return_value
        )

    def test_address_redefinition_kills(self):
        src = """
        func @f(%p) {
        entry:
          %a = load %p
          %p = add %p, 1
          %b = load %p
          %c = add %a, %b
          ret %c
        }
        """
        f = parse_function(src)
        _transformed, report = RegisterPromotionPass().run(f)
        assert report.details["loads_promoted"] == 0

    def test_suite_equivalence(self):
        for name in ("dot", "conv3x3", "histogram"):
            wl = load(name)
            transformed, _ = RegisterPromotionPass().run(wl.function)
            verify_function(transformed)
            assert_equivalent(wl, transformed)


class TestNops:
    def test_inserts_after_hot_instructions(self, machine):
        wl = load("fib")
        allocation = allocate_linear_scan(wl.function, machine)
        result = analyze(allocation.function, machine, delta=0.01)
        # Threshold below the predicted peak guarantees hot sites exist.
        threshold = result.peak_state().peak - 0.1
        transformed, report = NopInsertionPass(
            analysis=result, threshold=threshold, burst=2
        ).run(allocation.function)
        assert report.changed
        nops = sum(1 for i in transformed.instructions() if i.opcode is Opcode.NOP)
        assert nops == report.details["nops"] > 0
        # Performance cost: more dynamic instructions.
        interp = Interpreter()
        before = interp.run(allocation.function, memory=dict(wl.memory))
        after = interp.run(transformed, memory=dict(wl.memory))
        assert after.return_value == before.return_value
        assert after.cycles > before.cycles

    def test_noop_without_analysis(self, loop):
        transformed, report = NopInsertionPass().run(loop)
        assert not report.changed


class TestReassign:
    def test_permutation_preserves_semantics(self, machine):
        wl = load("iir")
        allocation = allocate_linear_scan(wl.function, machine)
        transformed, report = ReassignPass(machine=machine).run(allocation.function)
        verify_function(transformed, allow_mixed_registers=False)
        interp = Interpreter()
        before = interp.run(allocation.function, memory=dict(wl.memory))
        after = interp.run(transformed, memory=dict(wl.memory))
        assert after.return_value == before.return_value == wl.expected_return

    def test_spreads_hot_registers(self, machine):
        from repro.opt import weighted_register_accesses

        wl = load("fir")
        allocation = allocate_linear_scan(wl.function, machine)  # first-free
        transformed, _report = ReassignPass(machine=machine).run(allocation.function)
        counts = weighted_register_accesses(transformed)
        hot = sorted(counts, key=counts.get, reverse=True)[:4]
        geometry = machine.geometry
        distances = [
            geometry.manhattan_distance(a, b)
            for i, a in enumerate(hot)
            for b in hot[i + 1:]
        ]
        # The four hottest registers end up spread out, not adjacent.
        assert sum(distances) / len(distances) >= 3.0

    def test_noop_without_machine(self, loop):
        _transformed, report = ReassignPass().run(loop)
        assert not report.changed

    def test_reserved_registers_fixed(self):
        from repro.arch import MachineDescription, RegisterFileGeometry
        from repro.opt.reassign import spreading_permutation

        m = MachineDescription(
            geometry=RegisterFileGeometry(rows=2, cols=2),
            reserved_registers=(0,),
        )
        perm = spreading_permutation({1: 10.0, 2: 5.0}, m)
        assert perm[0] == 0
        assert sorted(perm.values()) == [0, 1, 2, 3]


class TestDCE:
    def test_removes_dead_chain(self):
        src = """
        func @f() {
        entry:
          %dead1 = li 5
          %dead2 = add %dead1, %dead1
          %live = li 1
          ret %live
        }
        """
        f = parse_function(src)
        transformed, report = DeadCodeEliminationPass().run(f)
        assert report.details["removed"] == 2
        assert transformed.instruction_count() == 2

    def test_keeps_stores_and_effects(self):
        src = """
        func @f(%p) {
        entry:
          %v = li 9
          store %p, %v
          ret
        }
        """
        f = parse_function(src)
        transformed, report = DeadCodeEliminationPass().run(f)
        assert not report.changed
        assert transformed.instruction_count() == 3

    def test_suite_equivalence(self):
        for name in ("fir", "sort"):
            wl = load(name)
            transformed, _ = DeadCodeEliminationPass().run(wl.function)
            assert_equivalent(wl, transformed)
