"""Pass registry and pass manager."""

import pytest

from repro.errors import ReproError
from repro.ir import instructions as ins
from repro.ir.function import Function
from repro.opt import (
    DeadCodeEliminationPass,
    PassManager,
    PassReport,
    create_pass,
    registered_passes,
)


class TestRegistry:
    def test_all_expected_passes_registered(self):
        names = registered_passes()
        for expected in (
            "spill_critical",
            "split_live_ranges",
            "thermal_schedule",
            "promote",
            "insert_nops",
            "reassign",
            "dce",
        ):
            assert expected in names

    def test_create_by_name(self):
        pass_ = create_pass("dce")
        assert pass_.name == "dce"

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown pass"):
            create_pass("definitely_not_a_pass")


class TestPassManager:
    def test_sequencing_and_reports(self, loop):
        manager = PassManager()
        manager.add(DeadCodeEliminationPass()).add(DeadCodeEliminationPass())
        result, reports = manager.run(loop)
        assert len(reports) == 2
        assert all(isinstance(r, PassReport) for r in reports)

    def test_verification_catches_broken_pass(self, loop):
        class BreakerPass(DeadCodeEliminationPass):
            def run(self, function):
                clone = function.copy()
                # Drop the terminator of the entry block.
                clone.entry.instructions.pop()
                return clone, PassReport(pass_name="breaker", changed=True)

        manager = PassManager(passes=[BreakerPass()])
        with pytest.raises(Exception):
            manager.run(loop)

    def test_input_never_mutated(self, loop):
        snapshot = str(loop)
        PassManager(passes=[DeadCodeEliminationPass()]).run(loop)
        assert str(loop) == snapshot
