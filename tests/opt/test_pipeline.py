"""The full thermal-aware compilation pipeline."""

import pytest

from repro.arch import rf64
from repro.ir import verify_function
from repro.opt import ThermalAwareCompiler
from repro.regalloc import FirstFreePolicy, allocate_linear_scan
from repro.sim import Interpreter, ThermalEmulator
from repro.workloads import load, small_suite


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def compiler(machine):
    return ThermalAwareCompiler(machine)


class TestCorrectness:
    def test_suite_semantics_preserved(self, compiler):
        interp = Interpreter()
        for wl in small_suite():
            result = compiler.compile(wl.function)
            verify_function(result.allocated, allow_mixed_registers=False)
            out = interp.run(
                result.allocated, args=wl.args, memory=dict(wl.memory)
            )
            assert out.return_value == wl.expected_return, wl.name

    def test_result_contains_both_analyses(self, compiler):
        result = compiler.compile(load("fir").function)
        assert result.analysis_before is not None
        assert result.analysis_after is not None
        assert result.plan.function_name == "fir"

    def test_summary_keys(self, compiler):
        summary = compiler.compile(load("fib").function).summary()
        for key in (
            "instructions_before",
            "instructions_after",
            "peak_before",
            "peak_after",
            "gradient_before",
            "gradient_after",
        ):
            assert key in summary


class TestThermalEffect:
    def test_emulated_gradient_improves_on_hot_kernel(self, machine, compiler):
        """The pipeline's whole point: less gradient than first-free."""
        wl = load("fib")
        baseline = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
        optimized = compiler.compile(wl.function)

        emulator = ThermalEmulator(machine)
        before = emulator.run(baseline.function, memory=dict(wl.memory))
        after = emulator.run(optimized.allocated, memory=dict(wl.memory))
        assert after.execution.return_value == before.execution.return_value
        assert (
            after.steady_state.max_gradient()
            < before.steady_state.max_gradient()
        )

    def test_nops_can_be_disabled(self, machine):
        from repro.core.rules import RuleConfig
        from repro.ir import Opcode

        compiler = ThermalAwareCompiler(
            machine,
            rule_config=RuleConfig(peak_threshold=0.01),  # force the NOP rule
            enable_nops=False,
        )
        result = compiler.compile(load("fib").function)
        nops = sum(
            1 for i in result.allocated.instructions() if i.opcode is Opcode.NOP
        )
        assert nops == 0

    def test_nops_inserted_when_enabled(self, machine):
        from repro.core.rules import RuleConfig
        from repro.ir import Opcode

        compiler = ThermalAwareCompiler(
            machine,
            rule_config=RuleConfig(peak_threshold=0.01),
            enable_nops=True,
        )
        result = compiler.compile(load("fib").function)
        nops = sum(
            1 for i in result.allocated.instructions() if i.opcode is Opcode.NOP
        )
        assert nops > 0
