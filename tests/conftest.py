"""Shared fixtures: canonical functions and machines used across tests."""

from __future__ import annotations

import pytest

from repro.arch import MachineDescription, RegisterFileGeometry, rf16, rf64
from repro.ir import parse_function

STRAIGHTLINE_SRC = """
func @straight(%a, %b) {
entry:
  %t0 = add %a, %b
  %t1 = mul %t0, %a
  %t2 = sub %t1, %b
  ret %t2
}
"""

LOOP_SRC = """
func @loop(%n) {
entry:
  %acc = li 0
  %i = li 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %sq = mul %i, %i
  %acc = add %acc, %sq
  %i = add %i, 1
  jump head
exit:
  ret %acc
}
"""

DIAMOND_SRC = """
func @diamond(%x) {
entry:
  %c = cmplt %x, 10
  br %c, small, big
small:
  %r0 = add %x, 1
  jump join
big:
  %r1 = mul %x, 2
  jump join
join:
  %out = add %x, %x
  ret %out
}
"""

NESTED_SRC = """
func @nested(%n) {
entry:
  %total = li 0
  %i = li 0
  jump ohead
ohead:
  %c0 = cmplt %i, %n
  br %c0, oinit, oexit
oinit:
  %j = li 0
  jump ihead
ihead:
  %c1 = cmplt %j, %n
  br %c1, ibody, iexit
ibody:
  %p = mul %i, %j
  %total = add %total, %p
  %j = add %j, 1
  jump ihead
iexit:
  %i = add %i, 1
  jump ohead
oexit:
  ret %total
}
"""


@pytest.fixture
def straightline():
    return parse_function(STRAIGHTLINE_SRC)


@pytest.fixture
def loop():
    return parse_function(LOOP_SRC)


@pytest.fixture
def diamond():
    return parse_function(DIAMOND_SRC)


@pytest.fixture
def nested():
    return parse_function(NESTED_SRC)


@pytest.fixture
def machine():
    """The default 8×8 evaluation machine."""
    return rf64()


@pytest.fixture
def small_machine():
    """A 4×4 machine that forces pressure."""
    return rf16()


@pytest.fixture
def tiny_machine():
    """A 2×2 machine that forces spilling on almost anything."""
    return MachineDescription(name="rf4", geometry=RegisterFileGeometry(rows=2, cols=2))
