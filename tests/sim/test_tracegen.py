"""Access trace → power trace: energy conservation and windowing."""

import numpy as np
import pytest

from repro.arch import EnergyModel, RegisterFileGeometry
from repro.errors import SimulationError
from repro.ir.values import preg
from repro.sim import accesses_to_power_trace, mean_register_power
from repro.sim.interpreter import RegisterAccess
from repro.thermal import ThermalGrid


@pytest.fixture
def grid():
    return ThermalGrid(RegisterFileGeometry(rows=4, cols=4))


@pytest.fixture
def energy():
    return EnergyModel(read_energy=4e-12, write_energy=6e-12, cycle_time=1e-9)


def make_accesses(spec):
    """spec: list of (cycle, index, is_write)."""
    return [RegisterAccess(c, preg(i), w) for c, i, w in spec]


class TestEnergyConservation:
    def test_total_energy_matches_accesses(self, grid, energy):
        accesses = make_accesses(
            [(0, 0, False), (1, 0, True), (5, 3, False), (200, 9, True)]
        )
        trace = accesses_to_power_trace(accesses, 256, grid, energy, window=64)
        expected = 2 * 4e-12 + 2 * 6e-12
        assert trace.total_energy() == pytest.approx(expected)

    def test_windows_cover_trace(self, grid, energy):
        accesses = make_accesses([(i, 0, False) for i in range(100)])
        trace = accesses_to_power_trace(accesses, 100, grid, energy, window=32)
        assert len(trace) == 4  # ceil(100/32)

    def test_power_in_correct_window(self, grid, energy):
        accesses = make_accesses([(70, 5, True)])
        trace = accesses_to_power_trace(accesses, 128, grid, energy, window=64)
        assert trace.samples[0].sum() == 0.0
        assert trace.samples[1].sum() > 0.0

    def test_late_access_clamped_to_last_window(self, grid, energy):
        accesses = make_accesses([(1000, 5, True)])
        trace = accesses_to_power_trace(accesses, 128, grid, energy, window=64)
        assert trace.samples[-1].sum() > 0.0


class TestValidation:
    def test_bad_window(self, grid, energy):
        with pytest.raises(SimulationError):
            accesses_to_power_trace([], 10, grid, energy, window=0)

    def test_out_of_range_register(self, grid, energy):
        accesses = make_accesses([(0, 99, False)])
        with pytest.raises(SimulationError):
            accesses_to_power_trace(accesses, 10, grid, energy)


class TestMeanPower:
    def test_average_over_duration(self, energy):
        accesses = make_accesses([(0, 2, True), (1, 2, True)])
        power = mean_register_power(accesses, 100, energy, 16)
        # Two writes over 100 cycles.
        assert power[2] == pytest.approx(2 * 6e-12 / (100 * 1e-9))
        assert set(power) == {2}

    def test_consistent_with_power_trace_mean(self, grid, energy):
        accesses = make_accesses(
            [(i, i % 16, i % 2 == 0) for i in range(128)]
        )
        trace = accesses_to_power_trace(accesses, 128, grid, energy, window=64)
        mean_from_trace = trace.mean_power()
        mean_direct = mean_register_power(accesses, 128, energy, 16)
        vec = grid.power_vector(mean_direct)
        assert np.allclose(mean_from_trace, vec)
