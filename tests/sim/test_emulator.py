"""Thermal emulator: the feedback-driven reference flow."""

import pytest

from repro.arch import rf64
from repro.regalloc import allocate_linear_scan
from repro.sim import ThermalEmulator, compare_maps, compare_to_emulation
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def emulator(machine):
    return ThermalEmulator(machine, window=64)


@pytest.fixture(scope="module")
def allocated(machine):
    wl = load("fib")
    return wl, allocate_linear_scan(wl.function, machine).function


class TestEmulation:
    def test_execution_result_included(self, emulator, allocated):
        wl, func = allocated
        result = emulator.run(func, memory=dict(wl.memory))
        assert result.execution.return_value == wl.expected_return
        assert result.cycles == result.execution.cycles

    def test_thermal_trace_grows_monotonically_early(self, emulator, allocated):
        wl, func = allocated
        result = emulator.run(func, memory=dict(wl.memory))
        peaks = result.thermal_trace.peak_over_time()
        assert peaks[0] <= peaks[-1] + 1e-9
        assert len(result.thermal_trace) >= 2

    def test_access_counts_match_execution(self, emulator, allocated):
        wl, func = allocated
        result = emulator.run(func, memory=dict(wl.memory))
        assert result.access_counts == result.execution.access_counts()
        assert sum(result.access_counts.values()) == len(result.execution.accesses)

    def test_long_run_final_approaches_steady(self, machine):
        """For a long steady loop the transient must approach the
        steady-state map built from average power."""
        wl = load("crc32")
        func = allocate_linear_scan(wl.function, machine).function
        emulator = ThermalEmulator(machine, window=32)
        result = emulator.run(func, memory=dict(wl.memory))
        report = compare_maps(result.final_state, result.steady_state)
        assert report.pearson_r > 0.95

    def test_steady_map_shortcut_matches_full_run(self, emulator, allocated):
        wl, func = allocated
        full = emulator.run(func, memory=dict(wl.memory))
        quick = emulator.steady_map(func, memory=dict(wl.memory))
        assert quick.max_abs_diff(full.steady_state) < 1e-9

    def test_leakage_inclusion_raises_floor(self, machine, allocated):
        wl, func = allocated
        emulator = ThermalEmulator(machine)
        with_leak = emulator.run(func, memory=dict(wl.memory), include_leakage=True)
        without = emulator.run(func, memory=dict(wl.memory), include_leakage=False)
        assert with_leak.steady_state.mean > without.steady_state.mean

    def test_wall_time_recorded(self, emulator, allocated):
        wl, func = allocated
        result = emulator.run(func, memory=dict(wl.memory))
        assert result.wall_time_seconds > 0.0


class TestAccuracyReports:
    def test_identical_maps_score_perfectly(self, emulator, allocated):
        wl, func = allocated
        result = emulator.run(func, memory=dict(wl.memory))
        report = compare_to_emulation(result.steady_state, result)
        assert report.pearson_r == pytest.approx(1.0)
        assert report.rmse_kelvin == pytest.approx(0.0, abs=1e-12)
        assert report.hottest_register_match
        assert report.peak_error_kelvin == pytest.approx(0.0, abs=1e-12)

    def test_speedup_infinite_for_zero_predict_time(self, emulator, allocated):
        wl, func = allocated
        result = emulator.run(func, memory=dict(wl.memory))
        report = compare_to_emulation(result.steady_state, result,
                                      predicted_seconds=0.0)
        assert report.speedup == float("inf")
