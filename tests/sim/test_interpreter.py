"""IR interpreter semantics: opcodes, wrapping, traces, faults."""

import pytest

from repro.arch import rf64
from repro.errors import SimulationError
from repro.ir import parse_function
from repro.sim import Interpreter


def run_expr(body: str, args=(), memory=None, params="%a, %b"):
    if not args:
        params = ""
    src = f"func @f({params}) {{\nentry:\n{body}\n}}\n"
    f = parse_function(src)
    return Interpreter().run(f, args=list(args), memory=memory or {})


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, -1),
            ("mul", -3, 4, -12),
            ("div", 7, 2, 3),
            ("div", -7, 2, -3),  # truncation toward zero, not floor
            ("rem", 7, 2, 1),
            ("rem", -7, 2, -1),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 5, 32),
            ("shr", 32, 5, 1),
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        result = run_expr(f"  %r = {op} %a, %b\n  ret %r", args=(a, b))
        assert result.return_value == expected

    def test_shr_is_logical(self):
        # -1 >> 1 on wrapped 32-bit = 0x7FFFFFFF.
        result = run_expr("  %r = shr %a, %b\n  ret %r", args=(-1, 1))
        assert result.return_value == 0x7FFFFFFF

    def test_shift_count_masked(self):
        result = run_expr("  %r = shl %a, %b\n  ret %r", args=(1, 33))
        assert result.return_value == 2  # 33 & 31 == 1

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("cmpeq", 3, 3, 1), ("cmpeq", 3, 4, 0),
            ("cmpne", 3, 4, 1), ("cmplt", -1, 0, 1),
            ("cmple", 3, 3, 1), ("cmpgt", 4, 3, 1),
            ("cmpge", 2, 3, 0),
        ],
    )
    def test_comparisons(self, op, a, b, expected):
        result = run_expr(f"  %r = {op} %a, %b\n  ret %r", args=(a, b))
        assert result.return_value == expected

    def test_unary(self):
        assert run_expr("  %r = neg %a\n  ret %r", args=(5, 0)).return_value == -5
        assert run_expr("  %r = not %a\n  ret %r", args=(0, 0)).return_value == -1

    def test_wrapping_overflow(self):
        result = run_expr(
            "  %r = mul %a, %b\n  ret %r", args=(2**30, 4)
        )
        assert result.return_value == 0  # 2^32 wraps to 0

    def test_division_by_zero(self):
        with pytest.raises(SimulationError, match="division by zero"):
            run_expr("  %r = div %a, %b\n  ret %r", args=(1, 0))
        with pytest.raises(SimulationError, match="remainder by zero"):
            run_expr("  %r = rem %a, %b\n  ret %r", args=(1, 0))


class TestMemoryAndControl:
    def test_load_store(self):
        result = run_expr(
            "  store %a, %b\n  %r = load %a\n  ret %r", args=(100, 42)
        )
        assert result.return_value == 42
        assert result.memory[100] == 42

    def test_uninitialized_memory_reads_zero(self):
        assert run_expr("  %r = load %a\n  ret %r", args=(5, 0)).return_value == 0

    def test_branching(self, diamond):
        interp = Interpreter()
        small = interp.run(diamond, args=[3])
        big = interp.run(diamond, args=[30])
        assert small.block_counts.get("small") == 1
        assert big.block_counts.get("big") == 1

    def test_loop_executes_n_times(self, loop):
        result = Interpreter().run(loop, args=[7])
        assert result.return_value == sum(i * i for i in range(7))
        assert result.block_counts["body"] == 7
        assert result.block_counts["head"] == 8

    def test_ret_void(self):
        result = run_expr("  ret")
        assert result.return_value is None

    def test_halt(self):
        result = run_expr("  %x = li 3\n  halt")
        assert result.return_value is None


class TestFaults:
    def test_undefined_register_read(self):
        src = "func @f() {\nentry:\n  ret %ghost\n}\n"
        # Verifier would reject; the interpreter must too when run raw.
        f = parse_function(src)
        with pytest.raises(SimulationError, match="undefined register"):
            Interpreter().run(f)

    def test_wrong_arity(self, loop):
        with pytest.raises(SimulationError, match="takes 1 args"):
            Interpreter().run(loop, args=[])

    def test_max_steps_guard(self):
        src = """
        func @spin() {
        entry:
          jump entry
        }
        """
        f = parse_function(src)
        with pytest.raises(SimulationError, match="exceeded"):
            Interpreter(max_steps=100).run(f)

    def test_unwritten_slot_reload(self):
        src = "func @f(%x) {\nentry:\n  %v = reload @s\n  ret %v\n}\n"
        f = parse_function(src)
        with pytest.raises(SimulationError, match="unwritten slot"):
            Interpreter().run(f, args=[1])


class TestTracing:
    def test_access_trace_counts(self):
        result = run_expr("  %r = add %a, %b\n  ret %r", args=(1, 2))
        # add reads a, b and writes r; ret reads r.
        assert len(result.accesses) == 4
        reads = [a for a in result.accesses if not a.is_write]
        writes = [a for a in result.accesses if a.is_write]
        assert len(reads) == 3
        assert len(writes) == 1

    def test_cycles_respect_latency(self):
        machine = rf64()
        src = "func @f(%p) {\nentry:\n  %v = load %p\n  ret %v\n}\n"
        f = parse_function(src)
        slow = Interpreter(machine=machine).run(f, args=[0])
        fast = Interpreter().run(f, args=[0])
        assert slow.cycles > fast.cycles

    def test_trace_disabled(self):
        src = "func @f() {\nentry:\n  %v = li 1\n  ret %v\n}\n"
        f = parse_function(src)
        result = Interpreter(trace_accesses=False).run(f)
        assert result.accesses == []
        assert result.return_value == 1

    def test_physical_index_accessor(self):
        src = "func @f() {\nentry:\n  r3 = li 1\n  ret r3\n}\n"
        f = parse_function(src)
        result = Interpreter().run(f)
        assert {a.physical_index for a in result.accesses} == {3}
