"""Public API surface: everything README/docstrings promise exists and works."""

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstring_quickstart_works(self):
        """The module docstring's quickstart must run verbatim-ish."""
        from repro import analyze, rf64
        from repro.regalloc import allocate_linear_scan
        from repro.workloads import load

        machine = rf64()
        allocated = allocate_linear_scan(load("fir").function, machine)
        result = analyze(allocated.function, machine, delta=0.05)
        assert result.converged


class TestSubpackageExports:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.ir", "repro.dataflow", "repro.arch", "repro.thermal",
         "repro.regalloc", "repro.core", "repro.opt", "repro.sim",
         "repro.workloads", "repro.util"],
    )
    def test_all_lists_are_accurate(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"


class TestAssignmentDistanceStats:
    def test_spread_policies_score_higher(self):
        from repro.arch import rf64
        from repro.regalloc import (
            FarthestFirstPolicy,
            FirstFreePolicy,
            allocate_linear_scan,
            assignment_distance_stats,
        )
        from repro.workloads import load

        machine = rf64()
        wl = load("fir")
        compact = assignment_distance_stats(
            allocate_linear_scan(wl.function, machine, FirstFreePolicy())
        )
        spread = assignment_distance_stats(
            allocate_linear_scan(wl.function, machine, FarthestFirstPolicy())
        )
        assert spread["mean_distance"] > compact["mean_distance"]

    def test_degenerate_single_register(self):
        from repro.arch import rf64
        from repro.ir import parse_function
        from repro.regalloc import allocate_linear_scan, assignment_distance_stats

        f = parse_function(
            "func @tiny() {\nentry:\n  %a = li 1\n  ret %a\n}\n"
        )
        stats = assignment_distance_stats(allocate_linear_scan(f, rf64()))
        assert stats == {"mean_distance": 0.0, "min_distance": 0.0}


class TestModulePrinting:
    def test_module_round_trip(self):
        from repro.ir import Module, parse_function, parse_module, print_module

        mod = Module("m")
        mod.add_function(parse_function(
            "func @a(%x) {\nentry:\n  ret %x\n}\n"
        ))
        mod.add_function(parse_function(
            "func @b() {\nentry:\n  %v = li 3\n  ret %v\n}\n"
        ))
        text = print_module(mod)
        again = parse_module(text)
        assert print_module(again) == text
        assert [f.name for f in again] == ["a", "b"]


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import (
            AllocationError,
            ConvergenceError,
            DataflowError,
            IRError,
            ParseError,
            ReproError,
            SimulationError,
            ThermalModelError,
            VerificationError,
        )

        for err in (IRError, ParseError, VerificationError, DataflowError,
                    AllocationError, ThermalModelError, SimulationError,
                    ConvergenceError):
            assert issubclass(err, ReproError)

    def test_parse_error_carries_line(self):
        from repro import ParseError

        err = ParseError("bad token", line=7)
        assert err.line == 7
        assert "line 7" in str(err)

    def test_convergence_error_carries_partial_result(self):
        from repro import ConvergenceError

        err = ConvergenceError("diverged", partial_result={"x": 1}, iterations=5)
        assert err.partial_result == {"x": 1}
        assert err.iterations == 5
