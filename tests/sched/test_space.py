"""Candidate space: deduplication, determinism, sizing."""

import pytest

from repro.errors import DataflowError
from repro.sched import Candidate, ScheduleSpace, stage_keys_for
from repro.workloads import load


class TestCandidate:
    def test_key_orders_policies_after_orders(self):
        bare = Candidate((0, 1))
        dressed = Candidate((0, 1), ("first-free", "chessboard"))
        assert bare.key() < dressed.key()
        assert len(bare) == 2

    def test_frozen_and_hashable(self):
        a = Candidate((1, 0))
        b = Candidate((1, 0))
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.order = (0, 1)


class TestScheduleSpace:
    def test_identity_is_input_order(self):
        space = ScheduleSpace(["a", "b", "c"])
        assert space.identity() == Candidate((0, 1, 2))

    def test_empty_space_rejected(self):
        with pytest.raises(DataflowError, match="at least one stage"):
            ScheduleSpace([])

    def test_distinct_stages_enumerate_all_permutations(self):
        space = ScheduleSpace(["a", "b", "c"])
        orders = list(space.enumerate_orders())
        assert len(orders) == 6 == space.size()
        assert len(set(orders)) == 6
        assert orders[0] == (0, 1, 2)  # identity first

    def test_repeated_stages_deduplicate(self):
        # Two interchangeable "b" stages: 4!/2! = 12 distinct orders.
        space = ScheduleSpace(["a", "b", "b", "c"])
        orders = list(space.enumerate_orders())
        assert len(orders) == 12 == space.size()
        # Among equal keys the smaller original index always comes
        # first, so each key sequence appears exactly once.
        assert all(o.index(1) < o.index(2) for o in orders)

    def test_all_equal_stages_collapse_to_one(self):
        space = ScheduleSpace(["x", "x", "x"])
        assert space.size() == 1
        assert list(space.enumerate_orders()) == [(0, 1, 2)]

    def test_placements_cross_product(self):
        space = ScheduleSpace(["a", "b"], placements=["p", "q"])
        candidates = list(space.enumerate_candidates())
        assert len(candidates) == 2 * 4 == space.size()
        assert len({c.key() for c in candidates}) == len(candidates)
        # Policies vary fastest within each order.
        assert candidates[0] == Candidate((0, 1), ("p", "p"))
        assert candidates[1] == Candidate((0, 1), ("p", "q"))

    def test_enumeration_limit(self):
        space = ScheduleSpace(list("abcdef"))
        assert len(list(space.enumerate_candidates(limit=10))) == 10

    def test_enumeration_is_deterministic(self):
        space = ScheduleSpace(["a", "b", "b", "c"], placements=["p", "q"])
        first = [c.key() for c in space.enumerate_candidates()]
        second = [c.key() for c in space.enumerate_candidates()]
        assert first == second


class TestStageKeys:
    def test_identity_relation_is_object_sharing(self):
        fib = load("fib")
        crc = load("crc32")
        keys = stage_keys_for([fib, crc, fib])
        assert keys == [0, 1, 0]

    def test_distinct_objects_get_distinct_keys(self):
        keys = stage_keys_for([load("fib"), load("fib")])
        # Two separate load() calls build two objects — NOT
        # interchangeable under the identity relation.
        assert keys == [0, 1]
