"""Search correctness: exact vs brute force, never-worse guarantees,
cache-warm re-evaluation monotonicity."""

import itertools

import pytest

from repro.core import AnalysisContext
from repro.errors import DataflowError
from repro.sched import (
    OBJECTIVES,
    Candidate,
    ScheduleEvaluator,
    ScheduleSpace,
    anneal_search,
    exhaustive_search,
    greedy_search,
    objective_by_name,
    optimize_schedule,
    search_by_name,
    stage_keys_for,
)
from repro import rf64
from repro.workloads import load

STAGES = ["fib", "crc32", "fir", "iir", "fib"]


@pytest.fixture(scope="module")
def context():
    return AnalysisContext(rf64())


def _evaluator(context, names, objective="peak"):
    loaded = {}
    workloads = []
    for name in names:
        if name not in loaded:
            loaded[name] = load(name)
        workloads.append(loaded[name])
    return (
        ScheduleEvaluator(
            context, workloads, objective_by_name(objective)
        ),
        ScheduleSpace(stage_keys_for(workloads)),
    )


def _brute_force(evaluator, space):
    """Reference argmin: every permutation of stage indices, scored
    independently of the space's deduplicated enumeration, ties broken
    on the candidate key."""
    best = None
    best_score = None
    for order in itertools.permutations(range(space.num_stages)):
        candidate = Candidate(order)
        score = evaluator.evaluate(candidate)
        if best is None or (score, candidate.key()) < (best_score,
                                                       best.key()):
            best, best_score = candidate, score
    return best, best_score


class TestExhaustive:
    @pytest.mark.parametrize("names", [
        STAGES[:3],
        STAGES[:4],
        STAGES[:5],               # repeated fib: multiset dedup in play
        ["crc32", "crc32", "fir"],
    ])
    def test_matches_brute_force_reference(self, context, names):
        evaluator, space = _evaluator(context, names)
        outcome = exhaustive_search(evaluator, space, budget=10_000)
        reference, reference_score = _brute_force(evaluator, space)
        assert outcome.best_score == reference_score
        # The deduplicated argmin scores identically to the brute-force
        # one and maps the same workloads to the same slots (equal-key
        # stages are interchangeable, so indices may differ).
        key = space.stage_keys
        assert [key[i] for i in outcome.best.order] \
            == [key[i] for i in reference.order]
        assert outcome.exhausted

    def test_budget_cuts_enumeration(self, context):
        evaluator, space = _evaluator(context, STAGES[:4])
        outcome = exhaustive_search(evaluator, space, budget=3)
        assert not outcome.exhausted
        assert outcome.best_score <= outcome.identity_score


class TestNeverWorseThanIdentity:
    @pytest.mark.parametrize("search", [greedy_search, anneal_search])
    @pytest.mark.parametrize("names", [STAGES[:3], STAGES[:5]])
    def test_search_never_worse(self, context, search, names):
        evaluator, space = _evaluator(context, names)
        outcome = search(evaluator, space, budget=60, seed=11)
        assert outcome.best_score <= outcome.identity_score

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_anneal_deterministic_per_seed(self, context, seed):
        evaluator, space = _evaluator(context, STAGES[:4])
        first = anneal_search(evaluator, space, budget=40, seed=seed)
        second = anneal_search(evaluator, space, budget=40, seed=seed)
        assert first.best == second.best
        assert first.best_score == second.best_score

    def test_greedy_single_stage(self, context):
        evaluator, space = _evaluator(context, ["fib"])
        outcome = greedy_search(evaluator, space, budget=10)
        assert outcome.best.order == (0,)


class TestCacheWarmReEvaluation:
    def test_objective_monotonic_and_hit_counters(self, context):
        """Re-scoring the same candidates through a warm evaluator is
        pure memo replay — identical scores, zero new summary solves."""
        evaluator, space = _evaluator(context, STAGES[:4])
        candidates = list(space.enumerate_candidates())
        cold = [evaluator.evaluate(c) for c in candidates]
        assert evaluator.evaluations == len(candidates)
        assert evaluator.memo_hits == 0
        compiles_after_cold = context.stats["summary_compiles"]
        hits_after_cold = context.stats["summary_hits"]

        warm = [evaluator.evaluate(c) for c in candidates]
        assert warm == cold                       # bitwise-stable scores
        assert evaluator.evaluations == len(candidates)  # nothing recomputed
        assert evaluator.memo_hits == len(candidates)
        assert context.stats["summary_compiles"] == compiles_after_cold
        assert context.stats["summary_hits"] == hits_after_cold

        # A *fresh* evaluator over the same (shared) context recomputes
        # scores but pulls every summary from the warm context cache.
        # The context cache keys on allocated-function identity, so the
        # allocator hands back the warm evaluator's allocations — the
        # same sharing AnalysisService.allocation provides in the
        # service path.
        evaluator2 = ScheduleEvaluator(
            context,
            evaluator.workloads,
            objective_by_name("peak"),
            allocator=lambda function, policy: next(
                f for f in evaluator._functions.values()
                if f.name == function.name
            ),
        )
        rescored = [evaluator2.evaluate(c) for c in candidates]
        assert rescored == cold
        assert context.stats["summary_compiles"] == compiles_after_cold
        assert context.stats["summary_hits"] > hits_after_cold


class TestObjectives:
    def test_registry_and_unknown_names(self):
        assert set(OBJECTIVES) == {"peak", "dwell", "steady"}
        with pytest.raises(DataflowError, match="unknown schedule objective"):
            objective_by_name("coolest")
        with pytest.raises(DataflowError, match="unknown search strategy"):
            search_by_name("quantum")

    def test_steady_at_least_one_pass_peak(self, context):
        """The steady schedule runs the pipeline from its own fixed
        point, which is at least as hot as an ambient-entry pass."""
        peak_eval, space = _evaluator(context, STAGES[:3], "peak")
        steady_eval, _ = _evaluator(context, STAGES[:3], "steady")
        steady_eval.workloads = peak_eval.workloads
        for candidate in space.enumerate_candidates():
            assert steady_eval.evaluate(candidate) \
                >= peak_eval.evaluate(candidate) - 1e-9

    def test_dwell_counts_hot_stage_weights(self, context):
        evaluator, space = _evaluator(context, STAGES[:3], "dwell")
        score = evaluator.evaluate(space.identity())
        weights = sum(
            evaluator._function(i, None).instruction_count()
            for i in range(3)
        )
        assert 0 <= score <= weights


class TestOptimizeSchedule:
    def test_strategies_agree_on_five_distinct_stages(self):
        """The acceptance-criteria property at the API level."""
        names = ["fib", "crc32", "fir", "iir", "matmul"]
        ex = optimize_schedule(names, strategy="exhaustive", budget=1000)
        gr = optimize_schedule(names, strategy="greedy", budget=1000)
        assert ex.exhausted
        assert ex.best_order == gr.best_order
        assert ex.best_score == gr.best_score
        assert ex.evidence["converged"]
        assert [s["name"] for s in ex.evidence["stages"]] == ex.best_names

    def test_report_round_trip(self):
        from repro.sched import ScheduleReport

        report = optimize_schedule(STAGES[:3], strategy="exhaustive",
                                   budget=100)
        data = report.to_dict()
        assert data["schema"] == "repro.schedule/1"
        revived = ScheduleReport.from_dict(data)
        assert revived.to_dict() == data

    def test_empty_schedule_rejected(self):
        with pytest.raises(DataflowError, match="empty schedule"):
            optimize_schedule([])

    def test_placement_axis_searches_policies(self):
        report = optimize_schedule(
            ["fib", "crc32"], strategy="exhaustive", budget=100,
            placements=["first-free", "chessboard"],
        )
        assert report.space_size == 2 * 4
        assert report.best_policies is not None
        assert all(
            p in ("first-free", "chessboard") for p in report.best_policies
        )
