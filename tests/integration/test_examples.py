"""Every shipped example must run to completion (exit code 0).

Examples are the documentation users execute first; this keeps them from
rotting as the library evolves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_cleanly(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example} produced no output"
