"""Integration tests: the paper's claims, end to end.

Each test here is a miniature version of one experiment from DESIGN.md —
small enough to run in seconds, strong enough to catch a regression in
the claim's *shape*.
"""

import pytest

from repro.arch import rf64
from repro.core import (
    AllocationPlacement,
    ExactPlacement,
    PolicyPlacement,
    UniformPlacement,
    analyze,
    rank_critical_variables,
)
from repro.regalloc import (
    ChessboardPolicy,
    FirstFreePolicy,
    RandomPolicy,
    allocate_linear_scan,
)
from repro.sim import ThermalEmulator, compare_to_emulation
from repro.thermal import summarize
from repro.workloads import load, pressure_program


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def emulator(machine):
    return ThermalEmulator(machine)


class TestFig1Shape:
    """Fig. 1: first-free and random form hot spots; chessboard does not."""

    @pytest.fixture(scope="class")
    def maps(self, machine, emulator):
        wl = load("fir")
        results = {}
        for policy in (FirstFreePolicy(), RandomPolicy(seed=1), ChessboardPolicy()):
            allocation = allocate_linear_scan(wl.function, machine, policy)
            results[policy.name] = emulator.steady_map(
                allocation.function, memory=dict(wl.memory)
            )
        return results

    def test_first_free_has_worst_gradient(self, maps):
        assert (
            maps["first-free"].max_gradient()
            > maps["chessboard"].max_gradient()
        )

    def test_chessboard_most_uniform(self, maps):
        assert maps["chessboard"].std < maps["first-free"].std
        assert maps["chessboard"].std < maps["random"].std

    def test_first_free_highest_peak(self, maps):
        assert maps["first-free"].peak >= maps["chessboard"].peak


class TestPressureCaveat:
    """§2: the chessboard advantage collapses at high register pressure."""

    @staticmethod
    def _chessboard_allocation(machine, pressure_level):
        wl = pressure_program(pressure_level, iterations=30)
        return allocate_linear_scan(wl.function, machine, ChessboardPolicy())

    def test_adjacency_appears_past_half_the_rf(self, machine):
        """The structural collapse: one colour class suffices below half
        the RF (no two used cells adjacent); past half it cannot."""
        geometry = machine.geometry

        def adjacent_pairs(allocation):
            used = sorted(allocation.registers_used())
            return sum(
                1
                for i, a in enumerate(used)
                for b in used[i + 1:]
                if geometry.manhattan_distance(a, b) == 1
            )

        assert adjacent_pairs(self._chessboard_allocation(machine, 8)) == 0
        assert adjacent_pairs(self._chessboard_allocation(machine, 48)) > 0

    def test_homogeneity_degrades_under_pressure(self, machine, emulator):
        def sigma_at(pressure_level):
            allocation = self._chessboard_allocation(machine, pressure_level)
            return emulator.steady_map(allocation.function).std

        assert sigma_at(48) > sigma_at(8)


class TestAnalysisAccuracy:
    """E3: the analysis predicts what the emulator measures."""

    @pytest.mark.parametrize("name", ["fir", "iir", "crc32", "fib"])
    def test_correlation_above_threshold(self, machine, emulator, name):
        wl = load(name)
        allocation = allocate_linear_scan(wl.function, machine)
        analysis = analyze(allocation.function, machine, delta=0.005)
        assert analysis.converged
        emulation = emulator.run(
            allocation.function, args=wl.args, memory=dict(wl.memory)
        )
        report = compare_to_emulation(analysis.peak_state(), emulation)
        assert report.pearson_r > 0.75, name

    def test_hottest_register_found(self, machine, emulator):
        wl = load("fib")
        allocation = allocate_linear_scan(wl.function, machine)
        analysis = analyze(allocation.function, machine, delta=0.005)
        emulation = emulator.run(allocation.function, memory=dict(wl.memory))
        report = compare_to_emulation(analysis.peak_state(), emulation)
        assert report.hottest_register_match


class TestPredictiveMode:
    """E7: pre-allocation analysis ranks the same critical variables."""

    def test_policy_placement_beats_uniform(self, machine, emulator):
        wl = load("fib")
        allocation = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
        emulation = emulator.run(allocation.function, memory=dict(wl.memory))

        informed = PolicyPlacement(
            wl.function, machine,
            policy_factory=lambda seed: FirstFreePolicy(), samples=1,
        )
        naive = UniformPlacement(machine)
        informed_result = analyze(
            wl.function, machine, delta=0.01, placement=informed
        )
        naive_result = analyze(wl.function, machine, delta=0.01, placement=naive)

        informed_report = compare_to_emulation(
            informed_result.peak_state(), emulation
        )
        naive_report = compare_to_emulation(naive_result.peak_state(), emulation)
        assert informed_report.pearson_r > naive_report.pearson_r

    def test_critical_ranking_stable_across_modes(self, machine):
        """Predictive and post-assignment modes agree on the top variable."""
        wl = load("fib")
        allocation = allocate_linear_scan(wl.function, machine, FirstFreePolicy())

        predictive = PolicyPlacement(
            wl.function, machine,
            policy_factory=lambda seed: FirstFreePolicy(), samples=1,
        )
        pre = analyze(wl.function, machine, delta=0.01, placement=predictive)
        pre_top = rank_critical_variables(pre, predictive, top_k=2)

        exact = AllocationPlacement(allocation, 64)
        post = analyze(wl.function, machine, delta=0.01, placement=exact)
        post_top = rank_critical_variables(post, exact, top_k=2)

        assert {str(cv.reg) for cv in pre_top} == {str(cv.reg) for cv in post_top}


class TestAnalysisVsEmulationCost:
    """§1/§4: analysis avoids the 'time-consuming thermal simulation'."""

    def test_analysis_faster_than_emulation_on_long_run(self, machine):
        import time

        from repro.workloads.kernels import crc32

        wl = crc32(n=96)  # long dynamic run, short static body
        allocation = allocate_linear_scan(wl.function, machine)

        t0 = time.perf_counter()
        analysis = analyze(allocation.function, machine, delta=0.05)
        analysis_time = time.perf_counter() - t0

        emulator = ThermalEmulator(machine, window=16)
        emulation = emulator.run(allocation.function, memory=dict(wl.memory))

        assert analysis.converged
        assert emulation.wall_time_seconds > analysis_time
