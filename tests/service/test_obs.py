"""Metrics through the service layer: envelopes, events, wire kind.

Acceptance (PR 10): envelopes produced without metrics enabled stay
bit-identical to the PR 9 fixtures (no ``metrics`` key at all); with
metrics enabled every envelope carries a snapshot, the job stream
interleaves ``obs`` events, and the ``metrics`` request kind reads the
registry over the wire.
"""

import json
import pathlib

import pytest

from repro.obs import MetricsRegistry, default_registry
from repro.service import (
    AnalysisRequest,
    AnalysisService,
    MetricsRequest,
    ResultEnvelope,
    request_from_dict,
    request_from_json,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

ANALYZE = AnalysisRequest(workload="fib", delta=0.05)


@pytest.fixture
def global_metrics():
    """The process registry, enabled for the test and restored after.

    The registry is a process-wide singleton (hot paths bind it at
    import), so tests must leave it exactly as found: disabled, empty.
    """
    registry = default_registry()
    was = registry.enabled
    registry.reset()
    registry.set_enabled(True)
    try:
        yield registry
    finally:
        registry.set_enabled(was)
        registry.reset()


class TestRequestKind:
    def test_round_trip(self):
        for request in (
            MetricsRequest(),
            MetricsRequest(enable=True, request_id="m1"),
            MetricsRequest(enable=False, reset=True),
        ):
            assert request_from_json(request.to_json()) == request

    def test_kind_dispatch(self):
        request = request_from_dict({"kind": "metrics", "reset": True})
        assert isinstance(request, MetricsRequest) and request.reset

    def test_unknown_fields_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            request_from_dict({"kind": "metrics", "verbosity": 11})


class TestMetricsExecution:
    def test_reads_an_injected_registry(self):
        registry = MetricsRegistry(enabled=True)
        with AnalysisService(metrics=registry) as service:
            service.execute(ANALYZE)
            envelope = service.execute(MetricsRequest())
            assert envelope.ok
            result = envelope.result
            assert result["enabled"] is True
            counters = result["metrics"]["counters"]
            assert counters["service.requests.analyze"] == 1
            assert result["service"]["requests_served"] >= 1
            assert "service.requests.analyze" in result["rendered"]

    def test_enable_flips_the_service_registry_live(self):
        registry = MetricsRegistry()  # starts disabled
        with AnalysisService(metrics=registry) as service:
            first = service.execute(ANALYZE)
            assert first.metrics is None
            service.execute(MetricsRequest(enable=True))
            assert registry.enabled
            second = service.execute(ANALYZE)
            assert second.metrics is not None
            service.execute(MetricsRequest(enable=False))
            assert not registry.enabled

    def test_reset_is_read_and_clear(self):
        registry = MetricsRegistry(enabled=True)
        with AnalysisService(metrics=registry) as service:
            service.execute(ANALYZE)
            before = service.execute(MetricsRequest(reset=True))
            # The answer still carries the pre-reset snapshot...
            assert before.result["metrics"]["counters"]
            # ...and the registry itself is clean (bar the metrics
            # request's own accounting, recorded after the reset).
            counters = registry.snapshot()["counters"]
            assert "service.requests.analyze" not in counters

    def test_over_the_wire(self):
        registry = MetricsRegistry(enabled=True)
        with AnalysisService(metrics=registry) as service:
            line = MetricsRequest(request_id="m-wire").to_json()
            request = request_from_json(line)
            envelope = service.execute(request)
            revived = ResultEnvelope.from_json(envelope.to_json())
            assert revived.ok
            assert revived.result["enabled"] is True
            assert revived.request.request_id == "m-wire"


class TestEnvelopeMetrics:
    def test_disabled_envelopes_have_no_metrics_key(self):
        with AnalysisService() as service:
            envelope = service.execute(ANALYZE)
        assert envelope.metrics is None
        data = envelope.to_dict()
        assert "metrics" not in data
        assert ResultEnvelope.from_dict(data).metrics is None

    def test_enabled_envelopes_carry_the_snapshot(self, global_metrics):
        with AnalysisService() as service:
            envelope = service.execute(ANALYZE)
        assert envelope.ok
        counters = envelope.metrics["counters"]
        assert counters["tdfa.sweeps"] >= 1
        assert counters["service.requests.analyze"] == 1
        assert counters["service.cache.contexts.misses"] >= 1
        assert "tdfa.last_delta_kelvin" in envelope.metrics["gauges"]
        hist = envelope.metrics["histograms"]["service.request_seconds"]
        assert hist["count"] == 1
        # And the field wire-round-trips.
        revived = ResultEnvelope.from_json(envelope.to_json())
        assert revived.metrics == envelope.metrics

    def test_cache_hit_counters_accumulate(self, global_metrics):
        with AnalysisService() as service:
            service.execute(ANALYZE)
            envelope = service.execute(ANALYZE)
        counters = envelope.metrics["counters"]
        assert counters["service.cache.contexts.hits"] >= 1
        assert counters["service.cache.workloads.hits"] >= 1
        assert counters["service.cache.allocations.hits"] >= 1

    def test_error_envelopes_count_and_carry_metrics(self, global_metrics):
        with AnalysisService() as service:
            envelope = service.execute(
                AnalysisRequest(workload="no-such-kernel")
            )
        assert not envelope.ok
        counters = envelope.metrics["counters"]
        assert counters["service.errors"] == 1

    def test_obs_event_rides_the_progress_stream(self, global_metrics):
        events = []
        with AnalysisService() as service:
            service.execute(ANALYZE, progress=events.append)
        kinds = [event.get("event") for event in events]
        assert "sweep" in kinds and "obs" in kinds
        obs = [e for e in events if e.get("event") == "obs"][-1]
        assert obs["metrics"]["counters"]["tdfa.sweeps"] >= 1
        # obs arrives after the run's own progress events.
        assert kinds.index("obs") > kinds.index("sweep")

    def test_job_stream_interleaves_obs_frames(self, global_metrics):
        with AnalysisService() as service:
            job = service.submit(ANALYZE)
            kinds = [event.get("event") for event in job.events()]
            envelope = job.result()
        assert envelope.ok and envelope.metrics is not None
        assert "obs" in kinds and "sweep" in kinds and "status" in kinds


class TestFixtureBitIdentity:
    """Envelopes without metrics must serialize exactly as before."""

    @pytest.mark.parametrize("name", [
        "envelope_v1_analyze.json",
        "envelope_v1_error.json",
        "envelope_v1_suite.json",
        "envelope_v2_job.json",
    ])
    def test_fixture_round_trips_unchanged(self, name):
        data = json.loads((FIXTURES / name).read_text())
        revived = ResultEnvelope.from_dict(data)
        assert revived.metrics is None
        assert "metrics" not in revived.to_dict()

    def test_disabled_run_serializes_without_metrics(self):
        """An enable/disable cycle leaves no residue: a later run with
        the registry back off serializes with no ``metrics`` key and
        round-trips to the exact same document."""
        registry = default_registry()
        assert not registry.enabled  # the process default
        registry.set_enabled(True)
        registry.set_enabled(False)
        registry.reset()
        with AnalysisService() as service:
            envelope = service.execute(ANALYZE)
        data = envelope.to_dict()
        assert "metrics" not in data
        assert ResultEnvelope.from_dict(data).to_dict() == data
