"""Request dataclasses: JSON round-trips, kind dispatch, validation."""

import json

import pytest

from repro.core.tdfa import TDFAConfig
from repro.errors import ReproError
from repro.ir import parse_function
from repro.service import (
    REQUEST_KINDS,
    AnalysisRequest,
    CompileRequest,
    EmulateRequest,
    Fig1Request,
    PipelineRequest,
    SuiteRequest,
    WorkloadListRequest,
    request_from_dict,
    request_from_json,
)
from tests.conftest import LOOP_SRC

ALL_REQUESTS = [
    AnalysisRequest(workload="fir", delta=0.05, merge="max",
                    engine="stepped", policy="chessboard", top=3,
                    show_map=False, request_id="a1"),
    AnalysisRequest(ir_path="/tmp/k.ir", machine="rf32", chip=True),
    CompileRequest(workload="iir", delta=0.1, enable_nops=False),
    EmulateRequest(workload="fib", compare_analysis=True, engine="stepped",
                   delta=0.02, merge="mean"),
    Fig1Request(workload="fir", machine="rf16"),
    SuiteRequest(workloads=("fib", "crc32"), quick=False, chip=True,
                 include_pressure=True, random_count=2, processes=3),
    SuiteRequest(),
    PipelineRequest(stages=("fib", "crc32", "fib"), strategy="composed",
                    policies=("first-free", "chessboard", "first-free"),
                    machine="rf16", delta=0.005, request_id="p-7"),
    PipelineRequest(stages=("fib", "crc32"), sweep="sparse",
                    warm_start=True),
    PipelineRequest(ir_texts=(LOOP_SRC,), strategy="sequential", chip=True),
    PipelineRequest(),
    WorkloadListRequest(request_id="w-9"),
]


class TestRoundTrips:
    @pytest.mark.parametrize("request_", ALL_REQUESTS,
                             ids=lambda r: f"{r.kind}-{id(r) % 997}")
    def test_dict_round_trip(self, request_):
        revived = request_from_dict(request_.to_dict())
        assert revived == request_
        assert type(revived) is type(request_)

    @pytest.mark.parametrize("request_", ALL_REQUESTS,
                             ids=lambda r: f"{r.kind}-{id(r) % 997}")
    def test_json_round_trip(self, request_):
        text = request_.to_json()
        json.loads(text)  # valid strict JSON
        assert request_from_json(text) == request_

    def test_kind_discriminator_in_dict(self):
        for request_ in ALL_REQUESTS:
            assert request_.to_dict()["kind"] == request_.kind

    def test_workloads_tuple_survives_json(self):
        request = SuiteRequest(workloads=("fib", "fir"))
        revived = request_from_json(request.to_json())
        assert revived.workloads == ("fib", "fir")
        assert isinstance(revived.workloads, tuple)


class TestFunctionSerialization:
    def test_function_object_becomes_ir_text(self):
        function = parse_function(LOOP_SRC)
        request = AnalysisRequest(function=function)
        data = request.to_dict()
        assert "function" not in data
        assert "@loop" in data["ir_text"]
        # Revived request parses back to an equivalent function.
        revived = request_from_dict(data)
        assert revived.function is None
        assert parse_function(revived.ir_text).name == "loop"

    def test_explicit_ir_text_not_clobbered(self):
        request = AnalysisRequest(ir_text=LOOP_SRC)
        assert request.to_dict()["ir_text"] == LOOP_SRC


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown request kind"):
            request_from_dict({"kind": "transmogrify"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown request kind"):
            request_from_dict({"workload": "fib"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ReproError, match="unknown field"):
            request_from_dict({"kind": "analyze", "detla": 0.01})

    def test_non_object_rejected(self):
        with pytest.raises(ReproError, match="JSON object"):
            request_from_dict(["analyze"])

    def test_malformed_json_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            request_from_json("{nope")

    def test_registry_covers_all_kinds(self):
        assert set(REQUEST_KINDS) == {
            "analyze", "compile", "emulate", "fig1", "suite", "pipeline",
            "schedule", "workloads", "invalid",
            "submit", "poll", "events", "cancel", "metrics",
        }


class TestConfigMapping:
    def test_analysis_request_config(self):
        request = AnalysisRequest(delta=0.2, merge="mean", engine="stepped",
                                  max_iterations=7, include_leakage=False)
        config = request.config()
        assert config == TDFAConfig(delta=0.2, merge="mean", engine="stepped",
                                    max_iterations=7, include_leakage=False)

    def test_compile_request_default_delta_matches_pipeline(self):
        assert CompileRequest().delta == 0.05

    def test_input_sources_listed(self):
        assert AnalysisRequest(workload="fib").input_sources() == ["workload"]
        assert AnalysisRequest().input_sources() == []
        both = AnalysisRequest(workload="fib", ir_text="x")
        assert set(both.input_sources()) == {"workload", "ir_text"}
