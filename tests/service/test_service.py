"""AnalysisService: shared contexts, caching across requests, concurrency."""

import pytest

from repro.service import (
    AnalysisRequest,
    AnalysisService,
    CompileRequest,
    EmulateRequest,
    Fig1Request,
    SuiteRequest,
    WorkloadListRequest,
    default_service,
)
from repro.workloads import small_suite
from tests.conftest import LOOP_SRC


@pytest.fixture
def service():
    with AnalysisService() as svc:
        yield svc


class TestExecuteKinds:
    def test_analyze_workload(self, service):
        env = service.execute(AnalysisRequest(workload="fib", delta=0.05))
        assert env.ok and env.exit_code == 0
        assert env.result["converged"]
        assert env.result["engine"] in ("compiled", "stepped")
        assert env.result["peak_delta_kelvin"] > 0
        assert "thermal data flow analysis of @fib" in env.rendered
        assert env.context_stats["analyses"] == 1
        assert env.wall_time_seconds > 0

    def test_analyze_ir_text(self, service):
        env = service.execute(AnalysisRequest(ir_text=LOOP_SRC, delta=0.05))
        assert env.ok and env.result["function"] == "loop"

    def test_analyze_ir_path(self, service, tmp_path):
        path = tmp_path / "k.ir"
        path.write_text(LOOP_SRC)
        env = service.execute(AnalysisRequest(ir_path=str(path), delta=0.05))
        assert env.ok and env.result["function"] == "loop"

    def test_analyze_function_object(self, service):
        from repro.ir import parse_function

        env = service.execute(
            AnalysisRequest(function=parse_function(LOOP_SRC), delta=0.05)
        )
        assert env.ok and env.result["function"] == "loop"

    def test_analyze_chip_model(self, service):
        env = service.execute(
            AnalysisRequest(workload="fib", chip=True, delta=0.05)
        )
        assert env.ok and env.result["converged"]
        assert "chip model" in env.rendered

    def test_compile(self, service):
        env = service.execute(CompileRequest(workload="fib"))
        assert env.ok
        assert "thermal plan" in env.rendered
        assert env.result["summary"]["instructions_after"] > 0

    def test_emulate(self, service):
        env = service.execute(EmulateRequest(workload="fib"))
        assert env.ok
        assert env.result["return_value"] == 102334155
        assert "steady map" in env.rendered

    def test_fig1(self, service):
        env = service.execute(Fig1Request(workload="fib"))
        assert env.ok
        assert [p["policy"] for p in env.result["policies"]] == [
            "first-free", "random", "chessboard"
        ]

    def test_suite(self, service):
        env = service.execute(
            SuiteRequest(workloads=("fib", "crc32"), delta=0.05)
        )
        assert env.ok and env.result["converged"]
        report = env.result["report"]
        assert report["schema"] == "repro.suite/1"
        assert [r["name"] for r in report["results"]] == ["fib", "crc32"]

    def test_workload_list(self, service):
        env = service.execute(WorkloadListRequest())
        assert env.ok
        assert len(env.result["workloads"]) == 14
        assert env.context_stats == {}


class TestErrorEnvelopes:
    def test_unknown_workload(self, service):
        env = service.execute(AnalysisRequest(workload="nope"))
        assert not env.ok and env.exit_code == 1
        assert env.error["type"] == "UnknownWorkloadError"
        assert "available" in env.error_message()

    def test_missing_input(self, service):
        env = service.execute(AnalysisRequest())
        assert not env.ok and "provide an IR file" in env.error_message()

    def test_ambiguous_input(self, service):
        env = service.execute(
            AnalysisRequest(workload="fib", ir_text=LOOP_SRC)
        )
        assert not env.ok and "ambiguous" in env.error_message()

    def test_missing_file(self, service):
        env = service.execute(AnalysisRequest(ir_path="/nonexistent/k.ir"))
        assert not env.ok and env.error["type"] == "FileNotFoundError"

    def test_unknown_machine(self, service):
        env = service.execute(AnalysisRequest(workload="fib", machine="rf9"))
        assert not env.ok and "unknown machine" in env.error_message()

    def test_bad_config(self, service):
        env = service.execute(AnalysisRequest(workload="fib", delta=-1.0))
        assert not env.ok and "delta" in env.error_message()


class TestSharedContext:
    """The point of the service: every request amortizes one runtime."""

    def test_repeated_analyze_hits_block_caches(self, service):
        first = service.execute(AnalysisRequest(workload="fib", delta=0.05))
        assert first.context_stats["block_hits"] == 0
        second = service.execute(AnalysisRequest(workload="fib", delta=0.05))
        # Same workload object, same cached allocation -> identity-keyed
        # transfer caches serve every block from cache.
        assert second.context_stats["block_hits"] > 0
        assert (second.context_stats["block_compiles"]
                == first.context_stats["block_compiles"])
        assert second.context_stats["analyses"] == 2

    def test_analyze_then_compile_share_context(self, service):
        """Acceptance: analyze then compile reports context cache hits."""
        first = service.execute(AnalysisRequest(workload="fib", delta=0.05))
        env = service.execute(CompileRequest(workload="fib"))
        # One context served both: the compile envelope sees the analyze
        # run in the same counters, and the shared thermal model serves
        # its step operator from cache instead of re-exponentiating.
        assert env.context_stats["analyses"] > first.context_stats["analyses"]
        assert env.context_stats["operator_hits"] > 0
        assert env.context_stats["transfer_caches"] >= 1

    def test_analyze_then_emulate_compare_hits_caches(self, service):
        service.execute(AnalysisRequest(workload="fib", delta=0.01))
        env = service.execute(
            EmulateRequest(workload="fib", compare_analysis=True)
        )
        # compare-analysis re-analyzes the identical allocated function.
        assert env.ok and env.context_stats["block_hits"] > 0

    def test_chip_and_rf_contexts_are_distinct(self, service):
        rf = service.context_for("rf64")
        chip = service.context_for("rf64", chip=True)
        assert rf is not chip
        assert service.context_for("rf64") is rf

    def test_context_by_machine_value(self, service):
        from repro.arch import rf64

        assert service.context_for(rf64()) is service.context_for("rf64")

    def test_service_stats(self, service):
        service.execute(AnalysisRequest(workload="fib", delta=0.05))
        stats = service.stats()
        assert stats["requests_served"] == 1
        assert stats["workloads_cached"] == 1
        assert "rf64/rf" in stats["contexts"]


class TestEmulateAnalysisFlags:
    """CLI `--compare-analysis` used to hardcode delta and drop flags."""

    def test_flags_reach_the_analysis(self, service):
        env = service.execute(EmulateRequest(
            workload="fib", compare_analysis=True,
            delta=0.02, merge="mean", engine="stepped",
        ))
        assert env.ok
        analysis = env.result["analysis"]
        assert analysis["delta"] == 0.02
        assert analysis["merge"] == "mean"
        assert analysis["engine"] == "stepped"  # resolved engine, echoed
        assert analysis["converged"]

    def test_default_engine_resolves_to_compiled(self, service):
        env = service.execute(
            EmulateRequest(workload="fib", compare_analysis=True)
        )
        assert env.result["analysis"]["engine"] == "compiled"


class TestConcurrency:
    """Acceptance: concurrent submit() == serial execution, exactly."""

    QUICK = [wl.name for wl in small_suite()]

    @staticmethod
    def _headline(envelope):
        result = envelope.result
        return (
            result["iterations"],
            result["peak_kelvin"],
            result["peak_delta_kelvin"],
            result["gradient_kelvin"],
        )

    def test_concurrent_quick_suite_matches_serial(self):
        requests = [
            AnalysisRequest(workload=name, delta=0.01) for name in self.QUICK
        ]
        with AnalysisService() as serial_svc:
            serial = [serial_svc.execute(r) for r in requests]
        with AnalysisService(max_workers=4) as concurrent_svc:
            futures = [concurrent_svc.submit(r) for r in requests * 2]
            concurrent = [f.result() for f in futures]
        assert all(env.ok for env in serial + concurrent)
        expected = [self._headline(env) for env in serial]
        # Both passes over the concurrently-served requests agree with
        # the serial run bit for bit: the context lock serializes cache
        # mutation, so sharing changes cost, never results.
        assert [self._headline(e) for e in concurrent[:len(requests)]] == expected
        assert [self._headline(e) for e in concurrent[len(requests):]] == expected

    def test_concurrent_mixed_kinds_against_one_context(self):
        with AnalysisService(max_workers=4) as svc:
            futures = [
                svc.submit(AnalysisRequest(workload="fib", delta=0.05)),
                svc.submit(CompileRequest(workload="fib")),
                svc.submit(EmulateRequest(workload="fib")),
                svc.submit(AnalysisRequest(workload="crc32", delta=0.05)),
            ]
            envelopes = [f.result() for f in futures]
        assert all(env.ok for env in envelopes)
        assert envelopes[2].result["return_value"] == 102334155

    def test_map_preserves_request_order(self):
        with AnalysisService(max_workers=4) as svc:
            envelopes = svc.map([
                AnalysisRequest(workload="fib", delta=0.05, request_id="a"),
                AnalysisRequest(workload="crc32", delta=0.05, request_id="b"),
            ])
        assert [e.request.request_id for e in envelopes] == ["a", "b"]


class TestDefaultService:
    def test_process_wide_singleton(self):
        assert default_service() is default_service()

    def test_top_level_shims_share_default_runtime(self):
        import repro
        from repro.regalloc import allocate_linear_scan
        from repro.workloads import load

        machine = repro.rf64()
        context = default_service().context_for(machine)
        before = context.stats["analyses"]
        allocated = allocate_linear_scan(load("fib").function, machine)
        result = repro.analyze(allocated.function, machine, delta=0.05)
        assert result.converged
        assert context.stats["analyses"] == before + 1

    def test_run_suite_shim_uses_default_context(self):
        import repro

        context = default_service().context_for("rf64")
        before = context.stats["analyses"]
        report = repro.run_suite(names=["fib"], delta=0.05)
        assert report.all_converged
        assert context.stats["analyses"] == before + 1
        assert report.context_stats["analyses"] == before + 1
