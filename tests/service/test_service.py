"""AnalysisService: shared contexts, caching across requests, concurrency."""

import pytest

from repro.service import (
    AnalysisRequest,
    AnalysisService,
    CompileRequest,
    EmulateRequest,
    Fig1Request,
    PipelineRequest,
    SuiteRequest,
    WorkloadListRequest,
    default_service,
)
from repro.workloads import small_suite
from tests.conftest import LOOP_SRC


@pytest.fixture
def service():
    with AnalysisService() as svc:
        yield svc


class TestExecuteKinds:
    def test_analyze_workload(self, service):
        env = service.execute(AnalysisRequest(workload="fib", delta=0.05))
        assert env.ok and env.exit_code == 0
        assert env.result["converged"]
        assert env.result["engine"] in ("compiled", "stepped")
        assert env.result["peak_delta_kelvin"] > 0
        assert "thermal data flow analysis of @fib" in env.rendered
        assert env.context_stats["analyses"] == 1
        assert env.wall_time_seconds > 0

    def test_analyze_ir_text(self, service):
        env = service.execute(AnalysisRequest(ir_text=LOOP_SRC, delta=0.05))
        assert env.ok and env.result["function"] == "loop"

    def test_analyze_ir_path(self, service, tmp_path):
        path = tmp_path / "k.ir"
        path.write_text(LOOP_SRC)
        env = service.execute(AnalysisRequest(ir_path=str(path), delta=0.05))
        assert env.ok and env.result["function"] == "loop"

    def test_analyze_function_object(self, service):
        from repro.ir import parse_function

        env = service.execute(
            AnalysisRequest(function=parse_function(LOOP_SRC), delta=0.05)
        )
        assert env.ok and env.result["function"] == "loop"

    def test_analyze_chip_model(self, service):
        env = service.execute(
            AnalysisRequest(workload="fib", chip=True, delta=0.05)
        )
        assert env.ok and env.result["converged"]
        assert "chip model" in env.rendered

    def test_compile(self, service):
        env = service.execute(CompileRequest(workload="fib"))
        assert env.ok
        assert "thermal plan" in env.rendered
        assert env.result["summary"]["instructions_after"] > 0

    def test_emulate(self, service):
        env = service.execute(EmulateRequest(workload="fib"))
        assert env.ok
        assert env.result["return_value"] == 102334155
        assert "steady map" in env.rendered

    def test_fig1(self, service):
        env = service.execute(Fig1Request(workload="fib"))
        assert env.ok
        assert [p["policy"] for p in env.result["policies"]] == [
            "first-free", "random", "chessboard"
        ]

    def test_suite(self, service):
        env = service.execute(
            SuiteRequest(workloads=("fib", "crc32"), delta=0.05)
        )
        assert env.ok and env.result["converged"]
        report = env.result["report"]
        assert report["schema"] == "repro.suite/1"
        assert [r["name"] for r in report["results"]] == ["fib", "crc32"]

    def test_workload_list(self, service):
        env = service.execute(WorkloadListRequest())
        assert env.ok
        assert len(env.result["workloads"]) == 14
        assert env.context_stats == {}


class TestErrorEnvelopes:
    def test_unknown_workload(self, service):
        env = service.execute(AnalysisRequest(workload="nope"))
        assert not env.ok and env.exit_code == 1
        assert env.error["type"] == "UnknownWorkloadError"
        assert "available" in env.error_message()

    def test_missing_input(self, service):
        env = service.execute(AnalysisRequest())
        assert not env.ok and "provide an IR file" in env.error_message()

    def test_ambiguous_input(self, service):
        env = service.execute(
            AnalysisRequest(workload="fib", ir_text=LOOP_SRC)
        )
        assert not env.ok and "ambiguous" in env.error_message()

    def test_missing_file(self, service):
        env = service.execute(AnalysisRequest(ir_path="/nonexistent/k.ir"))
        assert not env.ok and env.error["type"] == "FileNotFoundError"

    def test_unknown_machine(self, service):
        env = service.execute(AnalysisRequest(workload="fib", machine="rf9"))
        assert not env.ok and "unknown machine" in env.error_message()

    def test_bad_config(self, service):
        env = service.execute(AnalysisRequest(workload="fib", delta=-1.0))
        assert not env.ok and "delta" in env.error_message()


class TestSharedContext:
    """The point of the service: every request amortizes one runtime."""

    def test_repeated_analyze_hits_block_caches(self, service):
        first = service.execute(AnalysisRequest(workload="fib", delta=0.05))
        assert first.context_stats["block_hits"] == 0
        second = service.execute(AnalysisRequest(workload="fib", delta=0.05))
        # Same workload object, same cached allocation -> identity-keyed
        # transfer caches serve every block from cache.
        assert second.context_stats["block_hits"] > 0
        assert (second.context_stats["block_compiles"]
                == first.context_stats["block_compiles"])
        assert second.context_stats["analyses"] == 2

    def test_analyze_then_compile_share_context(self, service):
        """Acceptance: analyze then compile reports context cache hits."""
        first = service.execute(AnalysisRequest(workload="fib", delta=0.05))
        env = service.execute(CompileRequest(workload="fib"))
        # One context served both: the compile envelope sees the analyze
        # run in the same counters, and the shared thermal model serves
        # its step operator from cache instead of re-exponentiating.
        assert env.context_stats["analyses"] > first.context_stats["analyses"]
        assert env.context_stats["operator_hits"] > 0
        assert env.context_stats["transfer_caches"] >= 1

    def test_analyze_then_emulate_compare_hits_caches(self, service):
        service.execute(AnalysisRequest(workload="fib", delta=0.01))
        env = service.execute(
            EmulateRequest(workload="fib", compare_analysis=True)
        )
        # compare-analysis re-analyzes the identical allocated function.
        assert env.ok and env.context_stats["block_hits"] > 0

    def test_chip_and_rf_contexts_are_distinct(self, service):
        rf = service.context_for("rf64")
        chip = service.context_for("rf64", chip=True)
        assert rf is not chip
        assert service.context_for("rf64") is rf

    def test_context_by_machine_value(self, service):
        from repro.arch import rf64

        assert service.context_for(rf64()) is service.context_for("rf64")

    def test_service_stats(self, service):
        service.execute(AnalysisRequest(workload="fib", delta=0.05))
        stats = service.stats()
        assert stats["requests_served"] == 1
        assert stats["workloads_cached"] == 1
        assert "rf64/rf" in stats["contexts"]


class TestEmulateAnalysisFlags:
    """CLI `--compare-analysis` used to hardcode delta and drop flags."""

    def test_flags_reach_the_analysis(self, service):
        env = service.execute(EmulateRequest(
            workload="fib", compare_analysis=True,
            delta=0.02, merge="mean", engine="stepped",
        ))
        assert env.ok
        analysis = env.result["analysis"]
        assert analysis["delta"] == 0.02
        assert analysis["merge"] == "mean"
        assert analysis["engine"] == "stepped"  # resolved engine, echoed
        assert analysis["converged"]

    def test_default_engine_resolves_to_compiled(self, service):
        env = service.execute(
            EmulateRequest(workload="fib", compare_analysis=True)
        )
        assert env.result["analysis"]["engine"] == "compiled"


class TestConcurrency:
    """Acceptance: concurrent submit() == serial execution, exactly."""

    QUICK = [wl.name for wl in small_suite()]

    @staticmethod
    def _headline(envelope):
        result = envelope.result
        return (
            result["iterations"],
            result["peak_kelvin"],
            result["peak_delta_kelvin"],
            result["gradient_kelvin"],
        )

    def test_concurrent_quick_suite_matches_serial(self):
        requests = [
            AnalysisRequest(workload=name, delta=0.01) for name in self.QUICK
        ]
        with AnalysisService() as serial_svc:
            serial = [serial_svc.execute(r) for r in requests]
        with AnalysisService(max_workers=4) as concurrent_svc:
            futures = [concurrent_svc.submit(r) for r in requests * 2]
            concurrent = [f.result() for f in futures]
        assert all(env.ok for env in serial + concurrent)
        expected = [self._headline(env) for env in serial]
        # Both passes over the concurrently-served requests agree with
        # the serial run bit for bit: the context lock serializes cache
        # mutation, so sharing changes cost, never results.
        assert [self._headline(e) for e in concurrent[:len(requests)]] == expected
        assert [self._headline(e) for e in concurrent[len(requests):]] == expected

    def test_concurrent_mixed_kinds_against_one_context(self):
        with AnalysisService(max_workers=4) as svc:
            futures = [
                svc.submit(AnalysisRequest(workload="fib", delta=0.05)),
                svc.submit(CompileRequest(workload="fib")),
                svc.submit(EmulateRequest(workload="fib")),
                svc.submit(AnalysisRequest(workload="crc32", delta=0.05)),
            ]
            envelopes = [f.result() for f in futures]
        assert all(env.ok for env in envelopes)
        assert envelopes[2].result["return_value"] == 102334155

    def test_map_preserves_request_order(self):
        with AnalysisService(max_workers=4) as svc:
            envelopes = svc.map([
                AnalysisRequest(workload="fib", delta=0.05, request_id="a"),
                AnalysisRequest(workload="crc32", delta=0.05, request_id="b"),
            ])
        assert [e.request.request_id for e in envelopes] == ["a", "b"]


class TestDefaultService:
    def test_process_wide_singleton(self):
        assert default_service() is default_service()

    def test_top_level_shims_share_default_runtime(self):
        import repro
        from repro.regalloc import allocate_linear_scan
        from repro.workloads import load

        machine = repro.rf64()
        context = default_service().context_for(machine)
        before = context.stats["analyses"]
        allocated = allocate_linear_scan(load("fib").function, machine)
        result = repro.analyze(allocated.function, machine, delta=0.05)
        assert result.converged
        assert context.stats["analyses"] == before + 1

    def test_run_suite_shim_uses_default_context(self):
        import repro

        context = default_service().context_for("rf64")
        before = context.stats["analyses"]
        report = repro.run_suite(names=["fib"], delta=0.05)
        assert report.all_converged
        assert context.stats["analyses"] == before + 1
        assert report.context_stats["analyses"] == before + 1


class TestPipelineRequests:
    def test_pipeline_stages(self, service):
        env = service.execute(PipelineRequest(
            stages=("fib", "crc32", "fib"), machine="rf16", delta=0.005,
        ))
        assert env.ok and env.result["converged"]
        report = env.result["report"]
        assert report["schema"] == "repro.pipeline/1"
        assert [s["name"] for s in report["stages"]] == ["fib", "crc32", "fib"]
        assert "stacked strategy" in env.rendered
        assert env.context_stats["pipelines"] == 1

    @pytest.mark.parametrize("strategy", ["composed", "sequential"])
    def test_pipeline_strategies(self, service, strategy):
        env = service.execute(PipelineRequest(
            stages=("fib", "crc32"), machine="rf16", strategy=strategy,
        ))
        assert env.ok and env.result["report"]["strategy"] == strategy

    def test_pipeline_strategies_agree_through_service(self, service):
        delta = 1e-5
        exits = {}
        for strategy in ("stacked", "composed", "sequential"):
            env = service.execute(PipelineRequest(
                stages=("fib", "crc32", "fib"), machine="rf16",
                strategy=strategy, delta=delta,
            ))
            assert env.ok, env.error_message()
            exits[strategy] = [
                s["exit_peak_kelvin"] for s in env.result["report"]["stages"]
            ]
        for strategy in ("stacked", "composed"):
            for a, b in zip(exits[strategy], exits["sequential"]):
                assert abs(a - b) <= 2 * delta

    def test_pipeline_ir_texts(self, service):
        env = service.execute(PipelineRequest(
            ir_texts=(LOOP_SRC, LOOP_SRC), machine="rf16", delta=0.01,
        ))
        assert env.ok
        assert [s["name"] for s in env.result["report"]["stages"]] == [
            "loop", "loop"
        ]

    def test_warm_pipeline_hits_pipeline_cache(self, service):
        request = PipelineRequest(stages=("fib", "fib"), machine="rf16")
        service.execute(request)
        env = service.execute(request)
        assert env.context_stats["pipeline_compiles"] == 1
        assert env.context_stats["pipeline_hits"] == 1
        assert env.context_stats["solve_hits"] > 0

    def test_empty_pipeline_clean_envelope(self, service):
        # compose_pipeline raises on empty input; the request layer must
        # answer with a clean ok=False envelope, not a traceback.
        for request in (
            PipelineRequest(stages=()),
            PipelineRequest(ir_texts=()),
            PipelineRequest(),
        ):
            env = service.execute(request)
            assert not env.ok and env.exit_code == 1
            assert "pipeline" in env.error_message()

    def test_ambiguous_pipeline_input(self, service):
        env = service.execute(PipelineRequest(
            stages=("fib",), ir_texts=(LOOP_SRC,),
        ))
        assert not env.ok and "ambiguous" in env.error_message()

    def test_unknown_stage_clean_envelope(self, service):
        env = service.execute(PipelineRequest(stages=("fib", "nope")))
        assert not env.ok
        assert env.error["type"] == "UnknownWorkloadError"

    def test_max_merge_needs_sequential_clean_envelope(self, service):
        env = service.execute(PipelineRequest(
            stages=("fib",), merge="max", strategy="stacked",
        ))
        assert not env.ok and "affine merge" in env.error_message()

    def test_pipeline_round_trip(self, service):
        request = PipelineRequest(
            stages=("fib", "crc32"), machine="rf16", strategy="composed",
            policies=("first-free", "chessboard"), request_id="p-1",
        )
        env = service.execute(request)
        assert env.ok
        from repro.service import ResultEnvelope

        revived = ResultEnvelope.from_json(env.to_json())
        assert revived == env
        assert revived.request == request


class TestContextEvictionPinning:
    """Regression: eviction must never race an in-flight context.

    Before the fix, inserting the 17th distinct (machine, chip) key
    evicted the oldest context even while another thread was executing
    against it; a same-key request then built a *fresh* context running
    concurrently with the old one, voiding the per-context-lock
    "concurrent == serial" guarantee.
    """

    def _machines(self, count):
        from dataclasses import replace

        from repro.arch import rf16

        base = rf16()
        return [replace(base, name=f"rf16-v{i}") for i in range(count)]

    def test_pinned_context_survives_eviction_pressure(self):
        import threading

        machines = self._machines(24)  # > _MAX_CONTEXTS distinct keys
        service = AnalysisService()
        failures = []
        stop = threading.Event()

        def hammer(offset):
            for i in range(120):
                machine = machines[(offset + i) % len(machines)]
                with service.pinned_context(machine) as context:
                    # While leased, every same-key lookup must resolve
                    # to the very same context object.
                    if service.context_for(machine) is not context:
                        failures.append((offset, i))
                        stop.set()
                        return
                if stop.is_set():
                    return

        threads = [
            threading.Thread(target=hammer, args=(o,)) for o in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        # With every lease released, the cap holds again.
        assert len(service._contexts) <= 16
        assert not service._pinned

    def test_unpinned_contexts_still_evicted(self):
        machines = self._machines(20)
        service = AnalysisService()
        for machine in machines:
            service.context_for(machine)
        assert len(service._contexts) <= 16

    def test_eviction_deferred_until_release(self):
        machines = self._machines(20)
        service = AnalysisService()
        with service.pinned_context(machines[0]) as pinned:
            for machine in machines[1:]:
                service.context_for(machine)
            # The pinned context may push the map over the cap, but it
            # is still the one serving its key.
            assert service.context_for(machines[0]) is pinned
        # After release the deferred eviction completes.
        assert len(service._contexts) <= 16


class TestServiceCacheBounds:
    """Regression: workloads/machines/emulators grew without bound."""

    def test_workload_cache_bounded(self, service):
        from repro.service.service import _MAX_WORKLOADS

        for i in range(_MAX_WORKLOADS + 10):
            # Distinct keys via the private dict (only 14 real names
            # exist); the cap is what's under test.
            with service._lock:
                service._workloads[f"wl{i}"] = object()
        service.workload("fib")
        assert len(service._workloads) <= _MAX_WORKLOADS

    def test_emulator_cache_bounded(self, service):
        from repro.service.service import _MAX_EMULATORS

        with service._lock:
            for i in range(_MAX_EMULATORS + 5):
                service._emulators[f"m{i}"] = object()
        service.emulator("rf16")
        assert len(service._emulators) <= _MAX_EMULATORS
