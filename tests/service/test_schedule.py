"""ScheduleRequest end to end: wire form, inline execution, seeded
reproducibility, and sharded-vs-inline argmin parity.

The acceptance bar: a ScheduleRequest sharded across two workers
returns the *identical* argmin schedule and evidence as the inline
run (candidate scoring is deterministic, so equality is exact, not
within-tolerance), and the composed-summary cache hits that make the
search cheap are visible in the envelope ``context_stats``.
"""

import pytest

from repro.errors import ProtocolError
from repro.service import (
    AnalysisService,
    ProcessBackend,
    RemoteBackend,
    ScheduleRequest,
    WorkerServer,
    request_from_dict,
)

SCHEDULE = ScheduleRequest(
    stages=("fib", "crc32", "fir", "iir"),
    strategy="exhaustive",
    budget=200,
)


@pytest.fixture
def service():
    with AnalysisService() as svc:
        yield svc


@pytest.fixture(scope="module")
def worker_pair():
    with WorkerServer() as first, WorkerServer() as second:
        first.start()
        second.start()
        yield first, second


def _best(envelope):
    report = envelope.result["report"]
    # The evidence minus its volatile timing/cumulative-counter fields:
    # everything left is a pure function of (pipeline, schedule), so
    # equality across backends is exact.
    evidence = dict(report["evidence"])
    evidence.pop("context_stats", None)
    totals = dict(evidence.get("totals", {}))
    totals.pop("wall_time_seconds", None)
    evidence["totals"] = totals
    return (report["best_order"], report["best_score"],
            report["best_policies"], report["identity_score"], evidence)


class TestWireForm:
    def test_round_trip_via_dict(self):
        request = ScheduleRequest(
            stages=("fib", "crc32"),
            strategy="anneal",
            seed=7,
            placements=("first-free", "chessboard"),
            candidates=(((1, 0), None), ((0, 1), ("hot", "cold"))),
        )
        revived = request_from_dict(request.to_dict())
        assert revived == request
        assert isinstance(revived.candidates[0][0], tuple)

    def test_random_stages_round_trip(self):
        request = ScheduleRequest(random_stages=3, seed=42, budget=24)
        assert request_from_dict(request.to_dict()) == request

    def test_unknown_field_rejected(self):
        data = SCHEDULE.to_dict()
        data["thermal_budget"] = 1.0
        with pytest.raises(ProtocolError, match="thermal_budget"):
            request_from_dict(data)

    def test_exactly_one_stage_source_required(self, service):
        both = service.execute(
            ScheduleRequest(stages=("fib",), random_stages=2)
        )
        assert not both.ok and "exactly one" in both.error_message()
        none = service.execute(ScheduleRequest())
        assert not none.ok and "exactly one" in none.error_message()


class TestInlineExecution:
    def test_schedule_report_and_cache_hits(self, service):
        envelope = service.execute(SCHEDULE)
        assert envelope.ok
        report = envelope.result["report"]
        assert report["schema"] == "repro.schedule/1"
        assert report["space_size"] == 24
        assert report["candidates_evaluated"] == 24
        assert report["exhausted"]
        assert report["best_score"] <= report["identity_score"]
        assert report["evidence"]["converged"]
        assert [s["name"] for s in report["evidence"]["stages"]] \
            == report["best_names"]
        # Composed-summary caching is what makes 24 candidates cheap:
        # one compile per distinct stage, the rest are hits — and the
        # counters surface in the envelope.
        assert envelope.context_stats["summary_compiles"] >= 4
        assert envelope.context_stats["summary_hits"] > \
            envelope.context_stats["summary_compiles"]
        assert "slot" in envelope.result["rendered"]

    def test_batch_progress_events(self, service):
        events = []
        job = service.submit(
            ScheduleRequest(stages=("fib", "crc32", "fir"),
                            strategy="exhaustive", budget=100, batch=2),
            progress=events.append,
        )
        assert job.result().ok
        batches = [e for e in events if e["event"] == "batch"]
        assert batches
        evaluated = [e["evaluated"] for e in batches]
        assert evaluated == sorted(evaluated)
        assert all("best_score" in e for e in batches)

    def test_ir_text_stages(self, service):
        from repro.ir import print_function
        from repro.workloads import load

        texts = tuple(
            print_function(load(name).function)
            for name in ("fib", "crc32")
        )
        envelope = service.execute(
            ScheduleRequest(ir_texts=texts + texts[:1],
                            strategy="exhaustive", budget=50)
        )
        assert envelope.ok
        # Repeated identical IR text collapses to one shared stage:
        # 3 slots, two interchangeable -> 3!/2! = 3 orders.
        assert envelope.result["report"]["space_size"] == 3


class TestSeededReproducibility:
    """Satellite: identical (request, seed) pairs are bitwise-identical
    across inline, process, and remote backends."""

    REQUEST = ScheduleRequest(random_stages=4, seed=123,
                              strategy="exhaustive", budget=100)

    def test_same_seed_same_result_inline(self, service):
        first = _best(service.execute(self.REQUEST))
        second = _best(service.execute(self.REQUEST))
        assert first == second

    def test_different_seed_different_pipeline(self, service):
        other = ScheduleRequest(random_stages=4, seed=124,
                                strategy="exhaustive", budget=100)
        a = service.execute(self.REQUEST).result["report"]
        b = service.execute(other).result["report"]
        assert a["stages"] != b["stages"] or a["best_score"] \
            != b["best_score"]

    def test_bitwise_identical_across_backends(self, service, worker_pair):
        inline = _best(service.execute(self.REQUEST))
        process_backend = ProcessBackend(processes=2)
        process = _best(
            service.submit(self.REQUEST, backend=process_backend).result()
        )
        remote_backend = RemoteBackend([w.label for w in worker_pair])
        try:
            remote = _best(
                service.submit(self.REQUEST, backend=remote_backend).result()
            )
        finally:
            remote_backend.close()
        assert inline == process
        assert inline == remote


class TestShardedSchedule:
    def test_two_worker_argmin_matches_inline(self, service, worker_pair):
        """Acceptance: sharded exhaustive search returns identical
        argmin + evidence, with cache hits visible in context_stats."""
        backend = RemoteBackend([w.label for w in worker_pair])
        try:
            remote = service.submit(SCHEDULE, backend=backend).result()
        finally:
            backend.close()
        inline = service.execute(SCHEDULE)
        assert remote.ok and inline.ok
        assert _best(remote) == _best(inline)
        report = remote.result["report"]
        assert report["candidates_evaluated"] == 24
        workers = remote.result["workers"]
        assert len(workers) == 2
        assert sum(info["candidates"] for info in workers) == 24
        assert remote.context_stats["summary_hits"] > 0

    def test_process_backend_shards_and_reports_workers(self, service):
        backend = ProcessBackend(processes=2)
        envelope = service.submit(SCHEDULE, backend=backend).result()
        assert envelope.ok
        assert _best(envelope) == _best(service.execute(SCHEDULE))
        assert len(envelope.result["workers"]) == 2

    def test_shard_events_and_progress(self, service, worker_pair):
        events = []
        backend = RemoteBackend([w.label for w in worker_pair])
        try:
            job = service.submit(SCHEDULE, progress=events.append,
                                 backend=backend)
            assert job.result().ok
        finally:
            backend.close()
        shards = [e for e in events if e["event"] == "shard"]
        assert len(shards) == 2
        assert all(e["ok"] for e in shards)
        batches = [e for e in events if e["event"] == "batch"]
        assert batches and batches[-1]["evaluated"] == 24

    def test_greedy_does_not_shard(self, service):
        """Only exhaustive enumerations deal candidates to workers;
        sequential strategies run on one process with a note-free
        inline-identical result."""
        request = ScheduleRequest(stages=("fib", "crc32", "fir"),
                                  strategy="greedy", budget=100)
        backend = ProcessBackend(processes=2)
        sharded = service.submit(request, backend=backend).result()
        inline = service.execute(request)
        assert sharded.ok
        assert _best(sharded) == _best(inline)
        assert "workers" not in sharded.result
