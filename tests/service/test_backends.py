"""Execution backends: inline, local processes, remote workers.

The acceptance bar: sharded execution is provably equivalent — a suite
run fanned across ≥2 workers agrees with the single-process inline run
within 2δ on every kernel, and the merged context stats equal the sum
of the per-worker stats.
"""

import pytest

from repro.service import (
    AnalysisRequest,
    AnalysisService,
    PipelineRequest,
    ProcessBackend,
    RemoteBackend,
    SuiteRequest,
    WorkerServer,
    parse_worker_address,
)

DELTA = 0.01
SUITE = SuiteRequest(workloads=("fib", "crc32", "fir", "iir"), delta=DELTA)


@pytest.fixture
def service():
    with AnalysisService() as svc:
        yield svc


@pytest.fixture(scope="module")
def worker_pair():
    """Two live workers on ephemeral localhost ports."""
    with WorkerServer() as first, WorkerServer() as second:
        first.start()
        second.start()
        yield first, second


def _suite_peaks(envelope):
    return {
        record["name"]: (record["peak_kelvin"], record["gradient_kelvin"],
                         record["iterations"])
        for record in envelope.result["report"]["results"]
    }


class TestInlineBackend:
    def test_default_backend_is_inline(self, service):
        job = service.submit(AnalysisRequest(workload="fib", delta=0.05))
        assert job.backend == "inline"
        assert job.result().backend == "inline"


class TestRemoteBackend:
    def test_suite_sharded_across_two_workers(self, service, worker_pair):
        """Acceptance: remote-sharded == inline within 2δ, stats summed."""
        backend = RemoteBackend([w.label for w in worker_pair])
        try:
            remote = service.submit(SUITE, backend=backend).result()
        finally:
            backend.close()
        inline = service.execute(SUITE)
        assert remote.ok and inline.ok
        assert remote.backend == "remote"
        remote_peaks = _suite_peaks(remote)
        inline_peaks = _suite_peaks(inline)
        assert set(remote_peaks) == set(inline_peaks)
        for name in inline_peaks:
            peak_r, grad_r, iters_r = remote_peaks[name]
            peak_i, grad_i, iters_i = inline_peaks[name]
            assert abs(peak_r - peak_i) <= 2 * DELTA, name
            assert abs(grad_r - grad_i) <= 2 * DELTA, name
            assert iters_r == iters_i, name
        # Kernels kept the requested order despite round-robin shards.
        assert [r["name"] for r in remote.result["report"]["results"]] \
            == list(SUITE.workloads)
        # Both workers did real work and the merged stats are their sum.
        workers = remote.result["workers"]
        assert len(workers) == 2
        assert all(info["kernels"] == 2 for info in workers)
        summed = {}
        for info in workers:
            for key, value in info["context_stats"].items():
                summed[key] = summed.get(key, 0) + value
        assert remote.context_stats == summed
        assert remote.result["report"]["context_stats"] == summed
        assert summed.get("analyses", 0) >= 4

    def test_shard_events_emitted(self, service, worker_pair):
        events = []
        backend = RemoteBackend([w.label for w in worker_pair])
        try:
            job = service.submit(SUITE, progress=events.append,
                                 backend=backend)
            assert job.result().ok
        finally:
            backend.close()
        shards = [e for e in events if e["event"] == "shard"]
        assert len(shards) == 2
        assert {e["worker"] for e in shards} \
            == {w.label for w in worker_pair}
        assert all(e["ok"] for e in shards)
        # The suite event contract holds for sharded runs too: one
        # kernel event per kernel, at its original suite position.
        kernels = [e for e in events if e["event"] == "kernel"]
        assert sorted(e["index"] for e in kernels) == [0, 1, 2, 3]
        assert {e["name"] for e in kernels} == set(SUITE.workloads)
        assert all(e["total"] == 4 for e in kernels)

    def test_pipeline_chunked_across_workers(self, service, worker_pair):
        request = PipelineRequest(
            stages=("fib", "crc32", "fib", "dct8"), machine="rf16",
            delta=1e-4,
        )
        backend = RemoteBackend([w.label for w in worker_pair])
        try:
            remote = service.submit(request, backend=backend).result()
        finally:
            backend.close()
        inline = service.execute(request)
        assert remote.ok, remote.error_message()
        report = remote.result["report"]
        assert [s["name"] for s in report["stages"]] \
            == ["fib", "crc32", "fib", "dct8"]
        # Chunk boundaries carry the thermal state: every stage entry
        # equals the previous stage's exit, across the worker hop too.
        stages = report["stages"]
        for prev, cur in zip(stages, stages[1:]):
            assert cur["entry_peak_kelvin"] == \
                pytest.approx(prev["exit_peak_kelvin"], abs=1e-9)
        assert abs(
            report["totals"]["exit_peak_kelvin"]
            - inline.result["report"]["totals"]["exit_peak_kelvin"]
        ) <= 2 * 1e-4
        assert len(remote.result["workers"]) == 2

    def test_pipeline_chunks_forward_sweep_knobs(self, service, worker_pair):
        """The sweep/warm-start knobs survive the chunked remote path:
        every worker's chunk resolves every stage to the requested CSR
        form, and the merged report echoes the knob."""
        request = PipelineRequest(
            stages=("fib", "crc32", "fib", "dct8"), machine="rf16",
            delta=1e-4, sweep="sparse", warm_start=True,
        )
        backend = RemoteBackend([w.label for w in worker_pair])
        try:
            remote = service.submit(request, backend=backend).result()
        finally:
            backend.close()
        assert remote.ok, remote.error_message()
        assert remote.result["report"]["sweep"] == "sparse"
        workers = remote.result["workers"]
        assert len(workers) == 2
        for info in workers:
            assert info["stage_sweeps"] == ["sparse"] * info["stages"]
        # And the sparse chunked run agrees with the dense inline run.
        inline = service.execute(
            PipelineRequest(stages=request.stages, machine="rf16",
                            delta=1e-4, sweep="batched")
        )
        assert abs(
            remote.result["report"]["totals"]["exit_peak_kelvin"]
            - inline.result["report"]["totals"]["exit_peak_kelvin"]
        ) <= 2 * 1e-4

    def test_single_request_forwarded_whole(self, service, worker_pair):
        backend = RemoteBackend([worker_pair[0].label])
        try:
            request = AnalysisRequest(workload="fib", delta=0.05,
                                      request_id="fwd-1")
            envelope = service.submit(request, backend=backend).result()
        finally:
            backend.close()
        assert envelope.ok
        assert envelope.request == request  # exact echo, id included
        assert envelope.result["converged"]

    def test_dead_worker_answers_with_error_envelope(self, service):
        backend = RemoteBackend(["127.0.0.1:9"])  # discard port: refused
        try:
            envelope = service.submit(
                AnalysisRequest(workload="fib"), backend=backend
            ).result()
        finally:
            backend.close()
        assert not envelope.ok
        # Connect-refused is distinguished from mid-request loss.
        assert envelope.error["type"] == "WorkerConnectError"
        assert "cannot connect" in envelope.error_message()

    def test_worker_serves_v1_style_requests(self, worker_pair):
        """A bare v1 request line round-trips into a revivable envelope."""
        import socket

        from repro.service import ResultEnvelope

        with socket.create_connection(worker_pair[0].address,
                                      timeout=30) as sock:
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            stream.write('{"kind": "analyze", "workload": "fib", '
                         '"delta": 0.05}\n')
            stream.flush()
            envelope = ResultEnvelope.from_json(stream.readline())
        assert envelope.ok and envelope.result["converged"]
        assert envelope.schema == "repro.service/3"

    def test_address_parsing(self):
        from repro.errors import ReproError

        assert parse_worker_address("127.0.0.1:7601") == ("127.0.0.1", 7601)
        assert parse_worker_address(("::1", 7601)) == ("::1", 7601)
        with pytest.raises(ReproError, match="HOST:PORT"):
            parse_worker_address("7601")
        with pytest.raises(ReproError, match="port"):
            parse_worker_address("host:http")


class TestProcessBackend:
    """Local worker processes — `SuiteRequest.processes` now fans out
    through this instead of run_suite's ad-hoc pool."""

    def test_suite_processes_field_shards_and_merges(self, service):
        sharded = service.execute(
            SuiteRequest(workloads=SUITE.workloads, delta=DELTA,
                         processes=2)
        )
        inline = service.execute(SUITE)
        assert sharded.ok
        report = sharded.result["report"]
        assert report["processes"] == 2
        assert [r["name"] for r in report["results"]] \
            == list(SUITE.workloads)
        sharded_peaks = _suite_peaks(sharded)
        inline_peaks = _suite_peaks(inline)
        for name in inline_peaks:
            assert abs(sharded_peaks[name][0] - inline_peaks[name][0]) \
                <= 2 * DELTA, name
        # Per-worker breakdown: one entry per pool *process* that
        # actually served shards (pool scheduling may hand both shards
        # to one process), kernels accounted for, stats summed.
        workers = sharded.result["workers"]
        assert 1 <= len(workers) <= 2
        assert len({info["worker"] for info in workers}) == len(workers)
        assert sum(info["kernels"] for info in workers) == 4
        summed = {}
        for info in workers:
            for key, value in info["context_stats"].items():
                summed[key] = summed.get(key, 0) + value
        assert report["context_stats"] == summed
        assert sharded.context_stats == summed

    def test_pressure_and_random_scenarios_shard_as_ir(self, service):
        """Regression: generator-addressed scenarios (pressure sweeps,
        random loops) used to fall back to unsharded execution; they now
        serialize to IR text and shard like named kernels — same
        kernels, same order, same numbers as the inline run."""
        request = SuiteRequest(
            workloads=("fib",), include_pressure=True, random_count=2,
            delta=0.05, processes=2,
        )
        sharded = service.execute(request)
        assert sharded.ok
        report = sharded.result["report"]
        assert len(report["results"]) > 3  # fib + pressure + 2 random
        # The whole point of the fix: the run really sharded.
        assert "workers" in sharded.result
        assert sum(
            info["kernels"] for info in sharded.result["workers"]
        ) == len(report["results"])
        inline = service.execute(SuiteRequest(
            workloads=("fib",), include_pressure=True, random_count=2,
            delta=0.05,
        ))
        assert [r["name"] for r in report["results"]] \
            == [r["name"] for r in inline.result["report"]["results"]]
        sharded_peaks = _suite_peaks(sharded)
        inline_peaks = _suite_peaks(inline)
        for name in inline_peaks:
            assert abs(sharded_peaks[name][0] - inline_peaks[name][0]) \
                <= 2 * 0.05, name
        stats = report["context_stats"]
        assert stats.get("block_compiles", 0) + stats.get("block_hits", 0) > 0

    def test_forwarded_single_request(self, service):
        backend = service.process_backend(2)
        envelope = service.submit(
            AnalysisRequest(workload="fib", delta=0.05), backend=backend
        ).result()
        assert envelope.ok
        assert envelope.backend == "process"
        assert envelope.result["converged"]

    def test_process_backend_reused_and_warm(self, service):
        assert service.process_backend(2) is service.process_backend(2)
        first = service.execute(
            SuiteRequest(workloads=("fib", "crc32"), delta=0.05,
                         processes=2)
        )
        second = service.execute(
            SuiteRequest(workloads=("fib", "crc32"), delta=0.05,
                         processes=2)
        )
        assert first.ok and second.ok
        # Same persistent worker processes: their per-process context
        # counters accumulate across requests (a fresh pool per call
        # would report 2 analyses, not 4).  Which worker gets which
        # kernel is pool-scheduled, so cache *hits* are not asserted.
        assert first.context_stats.get("analyses", 0) == 2
        assert second.context_stats.get("analyses", 0) == 4

    def test_rejects_zero_processes(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="at least one"):
            ProcessBackend(0)

    def test_one_process_serving_every_shard_counts_stats_once(self):
        """Regression: cumulative per-worker snapshots must merge by
        worker identity (max, then sum) — a single pool process serving
        all three shards reports 3 analyses, not 1+2+3."""
        from repro.service.backends import (
            run_suite_shards,
            shard_suite_request,
        )

        backend = ProcessBackend(1)
        try:
            request = SuiteRequest(workloads=("fib", "crc32", "fir"),
                                   delta=0.05)
            sharded = shard_suite_request(request, 3)
            assert len(sharded) == 3
            payload, stats = run_suite_shards(
                request, sharded,
                lambda _i, shard: backend._labelled_roundtrip(shard),
                1, None,
            )
        finally:
            backend.close()
        assert len(payload["workers"]) == 1
        assert payload["workers"][0]["kernels"] == 3
        assert stats.get("analyses") == 3, stats
