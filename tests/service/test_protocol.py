"""Protocol v2 compatibility: error taxonomy, v1 revival, serve modes."""

import io
import json
import pathlib

import pytest

from repro.errors import ProtocolError, ReproError
from repro.service import (
    SCHEMAS,
    AnalysisRequest,
    AnalysisService,
    InvalidRequest,
    ResultEnvelope,
    request_from_dict,
    request_from_json,
    serve_forever,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestProtocolErrorTaxonomy:
    """Wire-level violations raise ProtocolError (still a ReproError)."""

    def test_is_a_repro_error(self):
        assert issubclass(ProtocolError, ReproError)

    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed request JSON"):
            request_from_json("{nope")

    def test_non_object_document(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            request_from_json('["analyze"]')

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError) as excinfo:
            request_from_dict({"kind": "transmogrify"})
        # The rejection message stays exact across the v2 redesign.
        assert str(excinfo.value).startswith(
            "unknown request kind 'transmogrify'; expected one of: "
        )

    def test_unknown_field_rejection_stays_exact(self):
        with pytest.raises(ProtocolError) as excinfo:
            request_from_dict({"kind": "analyze", "detla": 0.01})
        assert str(excinfo.value) \
            == "unknown field(s) for 'analyze' request: detla"

    def test_kind_mismatch_rejection_stays_exact(self):
        with pytest.raises(ProtocolError) as excinfo:
            AnalysisRequest.from_dict({"kind": "suite"})
        assert str(excinfo.value) == (
            "request kind 'suite' does not match AnalysisRequest "
            "(expected 'analyze')"
        )

    def test_analysis_errors_are_not_protocol_errors(self):
        with AnalysisService() as service:
            envelope = service.execute(AnalysisRequest(workload="nope"))
        assert not envelope.ok
        assert envelope.error["type"] == "UnknownWorkloadError"
        assert not envelope.protocol_error


class TestEnvelopeSchemaVersioning:
    def test_v1_fixtures_revive_under_the_v2_reader(self):
        """Archived repro.service/1 envelopes still parse losslessly."""
        fixture_paths = sorted(FIXTURES.glob("envelope_v1_*.json"))
        assert len(fixture_paths) >= 3
        for path in fixture_paths:
            text = path.read_text()
            envelope = ResultEnvelope.from_json(text)
            assert envelope.schema == "repro.service/1"
            # v2-only fields default, rather than failing the parse.
            assert envelope.job_id is None
            assert envelope.backend is None
            # The revived envelope round-trips back to the same dict
            # (the reader preserves the declared schema version).
            assert ResultEnvelope.from_dict(envelope.to_dict()) == envelope
            assert envelope.to_dict()["schema"] == "repro.service/1"
            original = json.loads(text)
            assert envelope.ok == original["ok"]
            assert envelope.request.request_id \
                == original["request"]["request_id"]

    def test_v2_job_fixture_revives_under_the_v3_reader(self):
        """Archived repro.service/2 envelopes (job fields included)
        still parse losslessly and keep their declared schema."""
        text = (FIXTURES / "envelope_v2_job.json").read_text()
        envelope = ResultEnvelope.from_json(text)
        assert envelope.schema == "repro.service/2"
        assert envelope.job_id == "job-1"
        assert envelope.backend == "inline"
        assert envelope.request.request_id == "v2-archived-1"
        assert envelope.ok and envelope.converged
        assert ResultEnvelope.from_dict(envelope.to_dict()) == envelope
        assert envelope.to_dict()["schema"] == "repro.service/2"

    def test_v1_error_fixture_keeps_exit_semantics(self):
        envelope = ResultEnvelope.from_json(
            (FIXTURES / "envelope_v1_error.json").read_text()
        )
        assert isinstance(envelope.request, InvalidRequest)
        assert envelope.exit_code == 1

    def test_v1_suite_fixture_report_revives(self):
        from repro.core.suite_runner import SuiteReport

        envelope = ResultEnvelope.from_json(
            (FIXTURES / "envelope_v1_suite.json").read_text()
        )
        report = SuiteReport.from_dict(envelope.result["report"])
        assert [item.name for item in report.items] == ["fib", "crc32"]

    def test_unknown_schema_rejected(self):
        good = ResultEnvelope(request=AnalysisRequest(workload="fib"))
        data = good.to_dict()
        data["schema"] = "repro.service/9"
        with pytest.raises(ProtocolError, match="unsupported envelope schema"):
            ResultEnvelope.from_dict(data)

    def test_known_schemas(self):
        assert SCHEMAS == (
            "repro.service/1", "repro.service/2", "repro.service/3"
        )


def _serve(lines, unordered=False, **service_kwargs):
    out = io.StringIO()
    with AnalysisService(**service_kwargs) as service:
        result = serve_forever(service, lines, out, unordered=unordered)
    envelopes = [json.loads(line) for line in out.getvalue().splitlines()]
    return result, envelopes


class TestServeProtocolErrors:
    def test_protocol_errors_counted(self):
        result, envelopes = _serve([
            "{nope",
            '{"kind": "transmogrify"}',
            '{"kind": "analyze", "workload": "fib", "delta": 0.05}',
            '{"kind": "analyze", "workload": "nope"}',
        ])
        assert result == 4  # int compatibility: lines answered
        assert result.answered == 4
        # Two wire-level violations; the unknown-workload failure is an
        # analysis error, not a protocol error.
        assert result.protocol_errors == 2
        assert result.exit_code == 3
        types = [
            (env.get("error") or {}).get("type") for env in envelopes
        ]
        assert types == ["ProtocolError", "ProtocolError", None,
                         "UnknownWorkloadError"]

    def test_clean_session_exit_code_zero(self):
        result, envelopes = _serve([
            '{"kind": "analyze", "workload": "fib", "delta": 0.05}',
        ])
        assert result.protocol_errors == 0
        assert result.exit_code == 0
        assert envelopes[0]["ok"] is True

    def test_executed_protocol_error_envelope_counts(self):
        # "invalid" parses (it is a registered kind) but has no
        # executor: the answered envelope carries ProtocolError and
        # must reach the exit-3 tally like a parse failure would.
        result, envelopes = _serve(['{"kind": "invalid"}'])
        assert result.protocol_errors == 1 and result.exit_code == 3
        assert envelopes[0]["error"]["type"] == "ProtocolError"

    def test_unknown_field_line_is_a_protocol_error(self):
        result, envelopes = _serve([
            '{"kind": "analyze", "workload": "fib", "detla": 0.01}',
        ])
        assert result.protocol_errors == 1
        assert envelopes[0]["error"]["type"] == "ProtocolError"
        assert "unknown field(s)" in envelopes[0]["error"]["message"]

    def test_cli_serve_exit_codes(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setattr("sys.stdin", io.StringIO("{nope\n"))
        assert main(["serve"]) == 3
        capsys.readouterr()
        monkeypatch.setattr("sys.stdin", io.StringIO(
            '{"kind": "workloads"}\n'
        ))
        assert main(["serve"]) == 0


class TestUnorderedServe:
    REQUESTS = [
        json.dumps({"kind": "analyze", "workload": name, "delta": 0.05,
                    "request_id": f"u{i}"})
        for i, name in enumerate(["fib", "crc32", "fir", "iir"])
    ]

    def test_every_request_answered_once(self):
        result, envelopes = _serve(self.REQUESTS, unordered=True,
                                   max_workers=4)
        assert result == len(self.REQUESTS)
        ids = sorted(env["request"]["request_id"] for env in envelopes)
        assert ids == ["u0", "u1", "u2", "u3"]
        assert all(env["ok"] for env in envelopes)

    def test_request_id_echo_is_the_correlation_handle(self):
        _result, envelopes = _serve(self.REQUESTS, unordered=True,
                                    max_workers=4)
        for envelope in envelopes:
            name = envelope["request"]["workload"]
            assert envelope["result"]["function"] == name

    def test_malformed_lines_still_answered(self):
        result, envelopes = _serve(
            ["{nope"] + self.REQUESTS, unordered=True, max_workers=4,
        )
        assert result == len(self.REQUESTS) + 1
        assert result.protocol_errors == 1
        invalid = [e for e in envelopes if e["request"]["kind"] == "invalid"]
        assert len(invalid) == 1 and invalid[0]["error"]["type"] \
            == "ProtocolError"

    def test_ordered_stays_the_default(self):
        result, envelopes = _serve(self.REQUESTS, max_workers=4)
        assert result == len(self.REQUESTS)
        assert [env["request"]["request_id"] for env in envelopes] \
            == ["u0", "u1", "u2", "u3"]

    def test_unordered_writes_do_not_wait_for_head_of_line(self):
        """A slow head request must not block a fast one's envelope."""
        import threading

        out = io.StringIO()
        written = threading.Event()
        gate = threading.Event()

        class SignallingOut:
            def write(self, text):
                out.write(text)
                if "u-fast" in text:
                    written.set()
                return len(text)

            def flush(self):
                pass

        lines_consumed = threading.Event()

        def lines():
            # Slow job first: its progress callback parks until the
            # fast job's envelope has been written.
            yield json.dumps({
                "kind": "suite", "workloads": ["fib", "crc32", "fir"],
                "delta": 0.005, "request_id": "u-slow",
            })
            yield json.dumps({
                "kind": "workloads", "request_id": "u-fast",
            })
            lines_consumed.set()
            # Hold the input open until the fast envelope proves the
            # head-of-line block is gone.
            assert written.wait(timeout=60)
            gate.set()

        with AnalysisService(max_workers=4) as service:
            result = serve_forever(
                service, lines(), SignallingOut(), unordered=True
            )
        assert gate.is_set()
        assert result == 2
        ids = [json.loads(line)["request"]["request_id"]
               for line in out.getvalue().splitlines()]
        assert set(ids) == {"u-slow", "u-fast"}
