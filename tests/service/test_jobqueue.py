"""repro.service/3 job-queue protocol over the pipe front-end.

Acceptance: a pipe client can submit a job, poll its status, stream its
progress as event frames, and cancel it — all as line-delimited JSON,
with unknown job ids answered as application errors (not protocol
violations) and malformed submits counted as protocol errors.
"""

import io
import json
import queue
import threading
import time

import pytest

from repro.service import (
    AnalysisService,
    EventFrame,
    ResultEnvelope,
    is_event_frame,
    serve_forever,
)

ANALYZE = {"kind": "analyze", "workload": "fib", "delta": 0.05}


class _Out:
    """A thread-safe sink that parses written lines into JSON docs."""

    def __init__(self):
        self._buf = ""
        self._docs = []
        self._cond = threading.Condition()

    def write(self, text):
        self._buf += text
        docs = []
        while "\n" in self._buf:
            line, self._buf = self._buf.split("\n", 1)
            if line.strip():
                docs.append(json.loads(line))
        if docs:
            with self._cond:
                self._docs.extend(docs)
                self._cond.notify_all()

    def flush(self):
        pass

    def snapshot(self):
        with self._cond:
            return list(self._docs)

    def wait_match(self, pred, timeout=60):
        """Block until some doc satisfies *pred*; returns all matches."""
        with self._cond:
            assert self._cond.wait_for(
                lambda: any(pred(doc) for doc in self._docs),
                timeout=timeout,
            ), f"no doc matched among {len(self._docs)}"
            return [doc for doc in self._docs if pred(doc)]


class _Session:
    """An interactive serve session: send request docs, await answers."""

    def __init__(self, service, unordered=True):
        self.out = _Out()
        self._lines = queue.Queue()
        self.result = None

        def run():
            self.result = serve_forever(
                service, self._line_iter(), self.out, unordered=unordered
            )

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()

    def _line_iter(self):
        while True:
            line = self._lines.get()
            if line is None:
                return
            yield line

    def send(self, doc):
        self._lines.put(json.dumps(doc))

    def close(self):
        self._lines.put(None)
        self._thread.join(timeout=60)
        return self.result


def _echoes(request_id):
    return lambda doc: (
        "frame" not in doc
        and (doc.get("request") or {}).get("request_id") == request_id
    )


class TestSubmitPollEventsCancel:
    def test_full_job_queue_round_trip(self):
        with AnalysisService() as service:
            session = _Session(service)
            session.send({"kind": "submit", "request": dict(ANALYZE),
                          "request_id": "s1"})
            ack = session.out.wait_match(_echoes("s1"))[0]
            assert ack["ok"]
            job_id = ack["result"]["job_id"]
            assert ack["result"]["status"] in ("queued", "running", "done")

            # Poll until the job lands; the final poll embeds the
            # job's full envelope.
            answer = None
            for attempt in range(600):
                rid = f"p{attempt}"
                session.send({"kind": "poll", "job_id": job_id,
                              "request_id": rid})
                answer = session.out.wait_match(_echoes(rid))[0]
                assert answer["ok"]
                assert answer["result"]["job_id"] == job_id
                if answer["result"]["done"]:
                    break
                time.sleep(0.02)
            assert answer["result"]["status"] == "done"
            embedded = ResultEnvelope.from_dict(answer["result"]["envelope"])
            assert embedded.ok and embedded.job_id == job_id
            assert embedded.result["converged"]

            # Replay the recorded events as frames, then follow the
            # cursor: a second read from `next` returns nothing new.
            session.send({"kind": "events", "job_id": job_id,
                          "request_id": "e1"})
            closing = session.out.wait_match(_echoes("e1"))[0]
            cursor = closing["result"]["next"]
            assert closing["result"]["dropped_events"] == 0
            frames = [doc for doc in session.out.snapshot()
                      if is_event_frame(doc) and doc["job_id"] == job_id]
            assert len(frames) == cursor
            assert [f["seq"] for f in frames] == list(range(cursor))
            kinds = [f["event"]["event"] for f in frames]
            assert kinds[0] == "status" and "sweep" in kinds
            for doc in frames:
                assert EventFrame.from_dict(doc).job_id == job_id

            session.send({"kind": "events", "job_id": job_id,
                          "after": cursor, "request_id": "e2"})
            again = session.out.wait_match(_echoes("e2"))[0]
            assert again["result"]["next"] == cursor
            assert len([doc for doc in session.out.snapshot()
                        if is_event_frame(doc)]) == cursor

            # Cancelling a finished job is a no-op, answered as such.
            session.send({"kind": "cancel", "job_id": job_id,
                          "request_id": "c1"})
            cancel = session.out.wait_match(_echoes("c1"))[0]
            assert cancel["result"]["cancelled"] is False
            assert cancel["result"]["status"] == "done"

            result = session.close()
        assert result.protocol_errors == 0
        assert result.exit_code == 0

    def test_stream_submit_frames_precede_the_envelope(self):
        with AnalysisService() as service:
            session = _Session(service)
            inner = dict(ANALYZE, request_id="in1")
            session.send({"kind": "submit", "stream": True,
                          "request": inner, "request_id": "st1"})
            final = session.out.wait_match(_echoes("in1"))[0]
            session.close()
        # The streamed answer is the *inner* request's envelope...
        assert final["ok"] and final["request"]["kind"] == "analyze"
        job_id = final["job_id"]
        docs = session.out.snapshot()
        frames = [doc for doc in docs
                  if is_event_frame(doc) and doc["job_id"] == job_id]
        # ...preceded by its live event frames, in seq order, ending
        # with the terminal status event.
        assert frames
        assert [f["seq"] for f in frames] == list(range(len(frames)))
        assert frames[-1]["event"] == {
            "job_id": job_id, "event": "status", "status": "done",
        }
        assert any(f["event"]["event"] == "sweep" for f in frames)
        assert docs.index(final) > docs.index(frames[-1])

    def test_ordered_stream_replays_frames_before_envelope(self):
        out = io.StringIO()
        line = json.dumps({
            "kind": "submit", "stream": True,
            "request": dict(ANALYZE, request_id="in2"),
        })
        with AnalysisService() as service:
            result = serve_forever(service, [line], out)
        docs = [json.loads(text) for text in out.getvalue().splitlines()]
        # Frames are garnish: one input line, one answered envelope.
        assert result == 1 and result.protocol_errors == 0
        final = docs[-1]
        assert final["ok"] and final["request"]["request_id"] == "in2"
        frames = docs[:-1]
        assert frames and all(is_event_frame(doc) for doc in frames)
        assert [f["seq"] for f in frames] == list(range(len(frames)))
        assert frames[0]["event"]["status"] == "running"
        assert frames[-1]["event"]["status"] == "done"


class TestJobQueueErrors:
    def test_unknown_job_is_an_application_error(self):
        out = io.StringIO()
        lines = [
            json.dumps({"kind": kind, "job_id": "job-nope",
                        "request_id": f"u-{kind}"})
            for kind in ("poll", "events", "cancel")
        ]
        with AnalysisService() as service:
            result = serve_forever(service, lines, out)
        docs = [json.loads(text) for text in out.getvalue().splitlines()]
        assert len(docs) == 3
        for doc in docs:
            assert doc["ok"] is False
            assert doc["error"]["type"] == "UnknownJobError"
            assert "job-nope" in doc["error"]["message"]
        # Unknown ids are the caller's bug, not a wire violation.
        assert result.protocol_errors == 0
        assert result.exit_code == 0

    def test_malformed_inner_request_is_a_protocol_error(self):
        out = io.StringIO()
        lines = [
            json.dumps({"kind": "submit",
                        "request": {"kind": "transmogrify"}}),
            json.dumps({"kind": "submit"}),  # no inner request at all
        ]
        with AnalysisService() as service:
            result = serve_forever(service, lines, out)
        docs = [json.loads(text) for text in out.getvalue().splitlines()]
        assert len(docs) == 2
        assert all(doc["error"]["type"] == "ProtocolError" for doc in docs)
        assert result.protocol_errors == 2
        assert result.exit_code == 3

    def test_job_queue_kind_outside_the_frontend_is_rejected(self):
        """submit/poll/events/cancel reaching execute() directly (no
        front-end to interpret them) answer with ProtocolError."""
        from repro.service import PollRequest, SubmitRequest

        with AnalysisService() as service:
            for request in (
                SubmitRequest(request=dict(ANALYZE)),
                PollRequest(job_id="job-1"),
            ):
                envelope = service.execute(request)
                assert not envelope.ok
                assert envelope.error["type"] == "ProtocolError"

    def test_job_queue_requests_round_trip(self):
        from repro.service import (
            CancelRequest,
            EventsRequest,
            PollRequest,
            SubmitRequest,
            request_from_json,
        )

        for request in (
            SubmitRequest(request=dict(ANALYZE), stream=True,
                          request_id="s"),
            PollRequest(job_id="job-1", request_id="p"),
            EventsRequest(job_id="job-1", after=7, request_id="e"),
            CancelRequest(job_id="job-1", request_id="c"),
        ):
            assert request_from_json(request.to_json()) == request


class TestBoundedEventsRing:
    """The events kind against a ring small enough to wrap."""

    # Enough sweeps to overflow a 4-slot ring: status(running) + sweeps
    # + status(done) for fib at a tight δ is comfortably > 4 events.
    WRAPPING = {"kind": "analyze", "workload": "fib", "delta": 0.005}

    def _finished_job(self, session):
        session.send({"kind": "submit", "request": dict(self.WRAPPING),
                      "request_id": "s1"})
        job_id = session.out.wait_match(_echoes("s1"))[0]["result"]["job_id"]
        for attempt in range(600):
            rid = f"p{attempt}"
            session.send({"kind": "poll", "job_id": job_id,
                          "request_id": rid})
            answer = session.out.wait_match(_echoes(rid))[0]
            if answer["result"]["done"]:
                return job_id, answer
            time.sleep(0.02)
        raise AssertionError("job never finished")

    def test_replay_from_stale_cursor_skips_evicted_events(self):
        with AnalysisService(events_capacity=4) as service:
            session = _Session(service)
            job_id, answer = self._finished_job(session)

            # Replay from 0 — a cursor older than anything retained.
            session.send({"kind": "events", "job_id": job_id,
                          "request_id": "e1"})
            closing = session.out.wait_match(_echoes("e1"))[0]
            dropped = closing["result"]["dropped_events"]
            cursor = closing["result"]["next"]
            assert dropped > 0
            frames = [doc for doc in session.out.snapshot()
                      if is_event_frame(doc) and doc["job_id"] == job_id]
            # Only the retained tail comes back: capacity-many frames,
            # contiguous absolute indices ending at the cursor, with
            # the evicted prefix skipped (first seq == dropped count).
            assert len(frames) == 4
            seqs = [f["seq"] for f in frames]
            assert seqs == list(range(cursor - 4, cursor))
            assert seqs[0] == dropped
            # The terminal status event is always the ring's newest.
            assert frames[-1]["event"]["status"] == "done"

            # Following the cursor from `next` yields nothing further.
            session.send({"kind": "events", "job_id": job_id,
                          "after": cursor, "request_id": "e2"})
            again = session.out.wait_match(_echoes("e2"))[0]
            assert again["result"]["next"] == cursor
            assert again["result"]["dropped_events"] == dropped
            assert len([doc for doc in session.out.snapshot()
                        if is_event_frame(doc)]) == 4
            session.close()

    def test_dropped_events_land_in_the_final_envelope(self):
        with AnalysisService(events_capacity=4) as service:
            session = _Session(service)
            job_id, answer = self._finished_job(session)
            envelope = answer["result"]["envelope"]
            assert envelope["context_stats"]["dropped_events"] > 0

            # An ample ring records the same run with no drops — and
            # therefore no dropped_events key at all (the bit-identity
            # idiom the metrics field follows).
        with AnalysisService() as service:
            session = _Session(service)
            job_id, answer = self._finished_job(session)
            envelope = answer["result"]["envelope"]
            assert "dropped_events" not in envelope["context_stats"]
            session.send({"kind": "events", "job_id": job_id,
                          "request_id": "e1"})
            closing = session.out.wait_match(_echoes("e1"))[0]
            assert closing["result"]["dropped_events"] == 0
            session.close()

    def test_obs_frames_interleave_and_survive_the_wrap(self):
        from repro.obs import default_registry

        registry = default_registry()
        registry.reset()
        registry.set_enabled(True)
        try:
            with AnalysisService(events_capacity=4) as service:
                session = _Session(service)
                job_id, answer = self._finished_job(session)
                session.send({"kind": "events", "job_id": job_id,
                              "request_id": "e1"})
                closing = session.out.wait_match(_echoes("e1"))[0]
                assert closing["result"]["dropped_events"] > 0
                frames = [doc for doc in session.out.snapshot()
                          if is_event_frame(doc)
                          and doc["job_id"] == job_id]
                kinds = [f["event"]["event"] for f in frames]
                # The obs event lands just before the terminal status,
                # so both survive eviction in the retained tail.
                assert kinds[-2:] == ["obs", "status"]
                obs = frames[-2]["event"]
                assert obs["metrics"]["counters"]["tdfa.sweeps"] >= 1
                # The final envelope carries the snapshot too.
                envelope = answer["result"]["envelope"]
                assert envelope["metrics"]["counters"]["tdfa.sweeps"] >= 1
                session.close()
        finally:
            registry.set_enabled(False)
            registry.reset()


class TestWorkerJobQueue:
    """The same kinds over the TCP worker socket."""

    def test_socket_submit_stream_round_trip(self):
        import socket

        from repro.service import WorkerServer

        with WorkerServer() as worker:
            worker.start()
            with socket.create_connection(worker.address,
                                          timeout=60) as sock:
                stream = sock.makefile("rw", encoding="utf-8",
                                       newline="\n")
                stream.write(json.dumps({
                    "kind": "submit", "stream": True,
                    "request": dict(ANALYZE, request_id="ws1"),
                }) + "\n")
                stream.flush()
                frames = []
                while True:
                    doc = json.loads(stream.readline())
                    if is_event_frame(doc):
                        frames.append(EventFrame.from_dict(doc))
                        continue
                    envelope = ResultEnvelope.from_dict(doc)
                    break
        assert envelope.ok and envelope.request.request_id == "ws1"
        assert frames and frames[-1].event["status"] == "done"
        assert [frame.seq for frame in frames] \
            == list(range(len(frames)))
        assert all(frame.job_id == envelope.job_id for frame in frames)
