"""ResultEnvelope: schema, exit semantics, lossless round-trips."""

import json

import pytest

from repro.service import AnalysisRequest, ResultEnvelope, SuiteRequest
from repro.service.envelope import SCHEMA

GOOD = ResultEnvelope(
    request=AnalysisRequest(workload="fir", delta=0.05, request_id="r1"),
    ok=True,
    result={"converged": True, "peak_kelvin": 320.25, "rendered": "report\n"},
    wall_time_seconds=0.0125,
    context_stats={"analyses": 3, "block_hits": 7},
)
DIVERGED = ResultEnvelope(
    request=AnalysisRequest(workload="fib", max_iterations=1),
    ok=True,
    result={"converged": False, "iterations": 1},
)
FAILED = ResultEnvelope(
    request=AnalysisRequest(workload="nope"),
    ok=False,
    error={"type": "UnknownWorkloadError", "message": "unknown workload 'nope'"},
)


class TestSchema:
    def test_version_field_present(self):
        assert GOOD.schema == SCHEMA == "repro.service/3"
        assert GOOD.to_dict()["schema"] == SCHEMA

    def test_to_json_is_strict_json(self):
        data = json.loads(GOOD.to_json())
        assert data["request"]["kind"] == "analyze"
        assert data["request"]["request_id"] == "r1"
        assert data["ok"] is True


class TestExitSemantics:
    def test_converged_success_is_zero(self):
        assert GOOD.exit_code == 0
        assert GOOD.converged

    def test_non_convergence_is_two(self):
        assert DIVERGED.exit_code == 2
        assert not DIVERGED.converged

    def test_error_is_one(self):
        assert FAILED.exit_code == 1
        assert FAILED.error_message() == "unknown workload 'nope'"

    def test_convergence_vacuously_true_without_field(self):
        env = ResultEnvelope(request=SuiteRequest(), result={"rendered": "x"})
        assert env.converged and env.exit_code == 0

    def test_rendered_view(self):
        assert GOOD.rendered == "report\n"
        assert FAILED.rendered == ""


class TestEventFrames:
    """The v3 streaming wire document, alongside the envelope."""

    def _frame(self):
        from repro.service import EventFrame

        return EventFrame(
            job_id="job-7", seq=3,
            event={"job_id": "job-7", "event": "sweep",
                   "iteration": 2, "delta": 0.125},
        )

    def test_round_trips_losslessly(self):
        from repro.service import EventFrame

        frame = self._frame()
        assert EventFrame.from_dict(frame.to_dict()) == frame
        assert EventFrame.from_json(frame.to_json()) == frame
        assert frame.to_dict()["schema"] == SCHEMA

    def test_discriminated_from_envelopes(self):
        from repro.service import is_event_frame

        assert is_event_frame(self._frame().to_dict())
        assert not is_event_frame(GOOD.to_dict())
        assert not is_event_frame("not a dict")

    def test_bad_documents_rejected(self):
        from repro.errors import ProtocolError
        from repro.service import EventFrame

        data = self._frame().to_dict()
        data["schema"] = "repro.service/9"
        with pytest.raises(ProtocolError, match="unsupported frame schema"):
            EventFrame.from_dict(data)
        with pytest.raises(ProtocolError, match="not an event frame"):
            EventFrame.from_dict(GOOD.to_dict())


class TestRoundTrips:
    @pytest.mark.parametrize("envelope", [GOOD, DIVERGED, FAILED],
                             ids=["good", "diverged", "failed"])
    def test_dict_round_trip_is_lossless(self, envelope):
        assert ResultEnvelope.from_dict(envelope.to_dict()) == envelope

    @pytest.mark.parametrize("envelope", [GOOD, DIVERGED, FAILED],
                             ids=["good", "diverged", "failed"])
    def test_json_round_trip_is_lossless(self, envelope):
        assert ResultEnvelope.from_json(envelope.to_json()) == envelope

    def test_request_revived_with_type(self):
        revived = ResultEnvelope.from_json(GOOD.to_json())
        assert isinstance(revived.request, AnalysisRequest)
        assert revived.request.delta == 0.05
