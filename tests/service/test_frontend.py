"""The line-delimited JSON front-end: one envelope per request line."""

import io
import json

from repro.service import AnalysisService, serve_forever
from repro.service.envelope import SCHEMA


def _serve(lines, **service_kwargs):
    out = io.StringIO()
    with AnalysisService(**service_kwargs) as service:
        answered = serve_forever(service, lines, out)
    parsed = [json.loads(line) for line in out.getvalue().splitlines()]
    return answered, parsed


class TestServeForever:
    def test_two_requests_two_envelopes(self):
        answered, envelopes = _serve([
            '{"kind": "analyze", "workload": "fir", "delta": 0.05}',
            '{"kind": "analyze", "workload": "fib", "delta": 0.05,'
            ' "request_id": "second"}',
        ])
        assert answered == 2 and len(envelopes) == 2
        for env in envelopes:
            assert env["schema"] == SCHEMA
            assert env["ok"] is True
            assert env["result"]["converged"] is True
        # Responses come back in request order with the id echoed.
        assert envelopes[0]["request"]["workload"] == "fir"
        assert envelopes[1]["request"]["request_id"] == "second"

    def test_pipelined_requests_stay_ordered(self):
        lines = [
            json.dumps({"kind": "analyze", "workload": name, "delta": 0.05,
                        "request_id": f"r{i}"})
            for i, name in enumerate(["fib", "crc32", "fir", "iir", "fib"])
        ]
        answered, envelopes = _serve(lines, max_workers=4)
        assert answered == len(lines)
        assert [e["request"]["request_id"] for e in envelopes] == [
            "r0", "r1", "r2", "r3", "r4"
        ]

    def test_malformed_line_answered_not_fatal(self):
        answered, envelopes = _serve([
            "this is not json",
            '{"kind": "analyze", "workload": "fib", "delta": 0.05}',
        ])
        assert answered == 2
        assert envelopes[0]["ok"] is False
        assert envelopes[0]["request"]["kind"] == "invalid"
        assert envelopes[0]["request"]["raw"] == "this is not json"
        assert "malformed" in envelopes[0]["error"]["message"]
        assert envelopes[1]["ok"] is True

    def test_every_output_line_is_a_revivable_envelope(self):
        from repro.service import InvalidRequest, ResultEnvelope

        _answered, envelopes = _serve([
            "not json at all",
            '{"kind": "workloads"}',
        ])
        revived = [ResultEnvelope.from_dict(env) for env in envelopes]
        assert isinstance(revived[0].request, InvalidRequest)
        assert revived[0].request.raw == "not json at all"
        assert revived[1].ok

    def test_unknown_kind_answered(self):
        _answered, envelopes = _serve(['{"kind": "transmogrify"}'])
        assert envelopes[0]["ok"] is False
        assert "unknown request kind" in envelopes[0]["error"]["message"]

    def test_execution_errors_become_envelopes(self):
        _answered, envelopes = _serve([
            '{"kind": "analyze", "workload": "nope"}',
        ])
        assert envelopes[0]["ok"] is False
        assert envelopes[0]["error"]["type"] == "UnknownWorkloadError"
        assert "available" in envelopes[0]["error"]["message"]

    def test_blank_lines_skipped(self):
        answered, envelopes = _serve([
            "", "   ",
            '{"kind": "workloads"}',
            "\n",
        ])
        assert answered == 1 and len(envelopes) == 1
        assert len(envelopes[0]["result"]["workloads"]) == 14

    def test_pipeline_request_through_the_pipe(self):
        answered, envelopes = _serve([
            '{"kind": "pipeline", "stages": ["fib", "crc32", "fib"],'
            ' "machine": "rf16", "delta": 0.01, "request_id": "p1"}',
            '{"kind": "pipeline", "stages": [], "request_id": "p2"}',
        ])
        assert answered == 2
        good, empty = envelopes
        assert good["ok"] is True
        assert good["result"]["report"]["schema"] == "repro.pipeline/1"
        assert good["request"]["request_id"] == "p1"
        # Empty pipelines answer with a clean error envelope, no traceback.
        assert empty["ok"] is False
        assert "pipeline" in empty["error"]["message"]
        assert empty["request"]["request_id"] == "p2"
