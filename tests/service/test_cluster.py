"""Control plane: registry lifecycle, shard retry, cancellation races.

The acceptance bar: killing one of two workers mid-suite recovers via
resubmission with a merged result identical to the surviving worker
alone, the dead worker shows up in the failure breakdown, and
cancellation interacts cleanly with the registry (a queued-cancelled
job never dispatches; a cancel mid-shard leaves the fleet healthy for
the next job).
"""

import socket
import threading

import pytest

from repro.errors import (
    JobCancelledError,
    NoHealthyWorkersError,
    ReproError,
    WorkerError,
)
from repro.service import (
    AnalysisRequest,
    AnalysisService,
    RemoteBackend,
    ResultEnvelope,
    SuiteRequest,
    WorkerRegistry,
    WorkerServer,
)
from repro.service.backends import ExecutionBackend
from repro.service.cluster import (
    DEAD,
    DRAINING,
    HEALTHY,
    JOINING,
    ShardDispatcher,
    annotate_worker_breakdown,
)

DELTA = 0.01
SUITE = SuiteRequest(workloads=("fib", "crc32", "fir", "iir"), delta=DELTA)


@pytest.fixture
def service():
    with AnalysisService() as svc:
        yield svc


class TestWorkerRegistry:
    def test_register_without_probe_is_healthy(self):
        registry = WorkerRegistry()
        registry.register("a")
        assert registry.state("a") == HEALTHY
        assert registry.workers() == ["a"]
        assert len(registry) == 1

    def test_register_with_probe_joins_then_heartbeats_healthy(self):
        registry = WorkerRegistry()
        registry.register("a", probe=lambda: True)
        assert registry.state("a") == JOINING
        assert registry.check("a") is True
        assert registry.state("a") == HEALTHY

    def test_consecutive_failures_mark_dead(self):
        registry = WorkerRegistry(max_failures=2)
        registry.register("a")
        registry.heartbeat("a", ok=False, error="boom")
        assert registry.state("a") == HEALTHY  # one strike
        registry.heartbeat("a", ok=False, error="boom again")
        assert registry.state("a") == DEAD
        # A later successful probe resurrects the worker (restart case).
        registry.heartbeat("a", ok=True)
        assert registry.state("a") == HEALTHY

    def test_success_resets_the_failure_streak(self):
        registry = WorkerRegistry(max_failures=2)
        registry.register("a")
        registry.heartbeat("a", ok=False)
        registry.heartbeat("a", ok=True)
        registry.heartbeat("a", ok=False)
        assert registry.state("a") == HEALTHY  # never two in a row

    def test_drain_is_sticky_under_heartbeats(self):
        registry = WorkerRegistry()
        registry.register("a")
        registry.drain("a")
        assert registry.state("a") == DRAINING
        registry.heartbeat("a", ok=True)  # a probe must not undo a drain
        assert registry.state("a") == DRAINING
        registry.undrain("a")
        assert registry.state("a") == HEALTHY

    def test_draining_and_dead_workers_are_not_leased(self):
        registry = WorkerRegistry()
        registry.register("a")
        registry.register("b")
        registry.drain("a")
        assert registry.acquire() == "b"
        registry.mark_dead("b", reason="gone")
        with pytest.raises(NoHealthyWorkersError, match="no healthy worker"):
            registry.acquire(exclude={"b"})

    def test_acquire_prefers_then_falls_back_least_loaded(self):
        registry = WorkerRegistry()
        registry.register("a")
        registry.register("b")
        # Deterministic placement: the preferred worker wins while
        # healthy, even when busier.
        assert registry.acquire(prefer="a") == "a"
        assert registry.acquire(prefer="a") == "a"
        assert registry.in_flight("a") == 2
        # With the preference excluded, least-loaded wins.
        assert registry.acquire(exclude={"a"}, prefer="a") == "b"
        # And without a preference, b (1 in flight) beats a (2).
        assert registry.acquire() == "b"

    def test_release_accounts_shard_outcomes(self):
        registry = WorkerRegistry(max_failures=2)
        registry.register("a")
        registry.acquire()
        registry.release("a", ok=False, error="lost it")
        assert registry.in_flight("a") == 0
        snapshot = registry.snapshot()[0]
        assert snapshot["shards_failed"] == 1
        assert snapshot["consecutive_failures"] == 1
        assert snapshot["last_error"] == "lost it"
        registry.acquire()
        registry.release("a", ok=True)
        assert registry.snapshot()[0]["consecutive_failures"] == 0
        assert registry.snapshot()[0]["shards_completed"] == 1

    def test_deregister_and_unknown_names(self):
        registry = WorkerRegistry()
        registry.register("a")
        registry.deregister("a")
        assert registry.workers() == []
        registry.deregister("a")  # unknown: ignored
        with pytest.raises(ReproError, match="unknown worker"):
            registry.drain("a")

    def test_failed_probe_records_the_exception(self):
        registry = WorkerRegistry(max_failures=1)

        def probe():
            raise OSError("connection refused")

        registry.register("a", probe=probe)
        assert registry.check("a") is False
        assert registry.state("a") == DEAD
        assert "connection refused" in registry.snapshot()[0]["last_error"]


class TestShardDispatcher:
    """Retry semantics over a fake send — no sockets involved."""

    @staticmethod
    def _envelope():
        return ResultEnvelope(request=AnalysisRequest(workload="fib"))

    def test_worker_loss_resubmits_to_the_survivor(self):
        registry = WorkerRegistry()
        registry.register("a")
        registry.register("b")
        calls = []

        def send(worker, request, on_event):
            calls.append(worker)
            if worker == "a":
                raise WorkerError("worker a lost the connection")
            return self._envelope()

        retries = []
        dispatcher = ShardDispatcher(registry, send)
        worker, envelope = dispatcher.dispatch(
            AnalysisRequest(workload="fib", request_id="r1"),
            progress=retries.append, prefer="a",
        )
        assert worker == "b" and envelope.ok
        assert calls == ["a", "b"]  # identical shard, resubmitted once
        assert [e["event"] for e in retries] == ["retry"]
        assert retries[0]["worker"] == "a"
        assert retries[0]["attempt"] == 1
        assert retries[0]["error"]["type"] == "WorkerError"
        assert retries[0]["request_id"] == "r1"
        # Accounting: a failed, excluded for this job but not dead yet.
        assert registry.state("a") == HEALTHY
        assert registry.snapshot()[0]["shards_failed"] == 1

    def test_analysis_failures_are_not_retried(self):
        registry = WorkerRegistry()
        registry.register("a")
        registry.register("b")
        calls = []

        def send(worker, request, on_event):
            calls.append(worker)
            return ResultEnvelope(
                request=AnalysisRequest(workload="nope"), ok=False,
                error={"type": "UnknownWorkloadError", "message": "nope"},
            )

        worker, envelope = ShardDispatcher(registry, send).dispatch(
            AnalysisRequest(workload="nope"), prefer="a"
        )
        # A deterministic failure cannot succeed elsewhere: one attempt,
        # the error envelope comes back as-is.
        assert len(calls) == 1
        assert not envelope.ok

    def test_exhausting_the_fleet_raises_the_last_failure(self):
        registry = WorkerRegistry()
        registry.register("a")
        registry.register("b")

        def send(worker, request, on_event):
            raise WorkerError(f"{worker} is gone")

        with pytest.raises(WorkerError, match="is gone"):
            ShardDispatcher(registry, send).dispatch(
                AnalysisRequest(workload="fib")
            )
        assert registry.in_flight() == 0  # every lease returned


class TestAnnotateWorkerBreakdown:
    def test_dead_worker_appended_with_empty_stats(self):
        registry = WorkerRegistry(max_failures=1)
        registry.register("a")
        registry.register("b")
        registry.acquire(prefer="b")
        registry.release("b", ok=False, error="killed")
        workers = [{"worker": "a", "kernels": 4,
                    "context_stats": {"analyses": 4}}]
        annotated = annotate_worker_breakdown(workers, registry)
        by_name = {row["worker"]: row for row in annotated}
        assert by_name["a"]["state"] == HEALTHY
        dead = by_name["b"]
        assert dead["state"] == DEAD
        assert dead["kernels"] == 0
        assert dead["shards_failed"] == 1
        assert dead["last_error"] == "killed"
        # Empty stats: the "merged stats == sum over workers" invariant
        # is untouched by failure rows.
        assert dead["context_stats"] == {}

    def test_no_registry_is_a_passthrough(self):
        workers = [{"worker": "a", "kernels": 1}]
        assert annotate_worker_breakdown(workers, None) is workers


class _FlakyWorker:
    """A TCP endpoint that accepts, reads a little, and hangs up —
    every request dies mid-flight (the SIGKILL shape, deterministic)."""

    def __init__(self):
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        host, port = self._sock.getsockname()[:2]
        self.label = f"{host}:{port}"
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.recv(64)  # let the request start...
            finally:
                conn.close()  # ...then die mid-request

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._sock.close()


@pytest.fixture(scope="module")
def good_worker():
    with WorkerServer() as worker:
        worker.start()
        yield worker


class TestWorkerLossRecovery:
    """Acceptance: a worker dying mid-suite costs a shard re-run, not
    the job — and the result is identical to the healthy run."""

    def test_mid_request_loss_resubmits_and_matches(self, service,
                                                    good_worker):
        flaky = _FlakyWorker()
        backend = RemoteBackend([flaky.label, good_worker.label],
                                max_failures=1)
        events = []
        try:
            lossy = service.submit(SUITE, progress=events.append,
                                   backend=backend).result(timeout=120)
        finally:
            backend.close()
            flaky.close()
        healthy_backend = RemoteBackend([good_worker.label])
        try:
            healthy = service.submit(
                SUITE, backend=healthy_backend
            ).result(timeout=120)
        finally:
            healthy_backend.close()
        assert lossy.ok, lossy.error_message()

        # Bit-identical recovery: every kernel record matches the run
        # that never saw a failure (same worker ended up serving all);
        # only wall time is nondeterministic.
        def thermal(envelope):
            return [
                {k: v for k, v in record.items()
                 if k != "wall_time_seconds"}
                for record in envelope.result["report"]["results"]
            ]

        assert thermal(lossy) == thermal(healthy)
        # The loss was narrated: at least one retry event, naming the
        # flaky worker and a mid-request (not connect-time) error.
        retries = [e for e in events if e["event"] == "retry"]
        assert retries and all(e["worker"] == flaky.label for e in retries)
        assert all(e["error"]["type"] == "WorkerError" for e in retries)
        # And the dead worker is reported in the failure breakdown,
        # contributing nothing to the summed stats.
        workers = {row["worker"]: row for row in lossy.result["workers"]}
        assert workers[flaky.label]["state"] == DEAD
        assert workers[flaky.label]["kernels"] == 0
        assert workers[flaky.label]["shards_failed"] >= 1
        assert workers[good_worker.label]["kernels"] == len(SUITE.workloads)
        summed = {}
        for row in workers.values():
            for key, value in row.get("context_stats", {}).items():
                summed[key] = summed.get(key, 0) + value
        assert lossy.context_stats == summed

    def test_connect_refused_is_distinguished(self, service, good_worker):
        """Satellite: connect-time refusal surfaces as
        WorkerConnectError in the retry narration (vs the flaky
        worker's mid-request WorkerError above)."""
        refused = socket.socket()
        refused.bind(("127.0.0.1", 0))  # bound but never listening
        host, port = refused.getsockname()[:2]
        events = []
        backend = RemoteBackend([f"{host}:{port}", good_worker.label],
                                max_failures=1)
        try:
            envelope = service.submit(
                SUITE, progress=events.append, backend=backend
            ).result(timeout=120)
        finally:
            backend.close()
            refused.close()
        assert envelope.ok, envelope.error_message()
        retries = [e for e in events if e["event"] == "retry"]
        assert retries
        assert all(e["error"]["type"] == "WorkerConnectError"
                   for e in retries)


class _CountingBackend(ExecutionBackend):
    """Inline execution that counts how often it was dispatched."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def execute(self, service, request, progress=None):
        self.calls += 1
        return service.execute(request)


class TestCancellationRaces:
    """Satellite: cancellation vs the dispatch/registry machinery."""

    def test_cancel_queued_job_never_dispatches(self):
        backend = _CountingBackend()
        with AnalysisService(max_workers=1) as service:
            gate = threading.Event()
            blocker = service.submit(
                AnalysisRequest(workload="fib", delta=0.05),
                progress=lambda event: gate.wait(timeout=30),
            )
            queued = service.submit(SUITE, backend=backend)
            assert queued.status() == "queued"
            assert queued.cancel() is True
            gate.set()
            assert blocker.result(timeout=60).ok
            assert queued.wait(timeout=60)
            # The cancelled job never reached the backend at all.
            assert backend.calls == 0
            with pytest.raises(JobCancelledError):
                queued.result()
            # Not because the backend is inert: an uncancelled job
            # dispatches through it fine.
            ran = service.submit(
                AnalysisRequest(workload="fib", delta=0.05),
                backend=backend,
            ).result(timeout=60)
            assert ran.ok and backend.calls == 1

    def test_cancel_queued_remote_job_releases_no_worker(self, good_worker):
        """A queued-then-cancelled remote job must leave the registry
        untouched: no lease taken, no shard dispatched."""
        backend = RemoteBackend([good_worker.label])
        try:
            with AnalysisService(max_workers=1) as service:
                gate = threading.Event()
                blocker = service.submit(
                    AnalysisRequest(workload="fib", delta=0.05),
                    progress=lambda event: gate.wait(timeout=30),
                )
                queued = service.submit(SUITE, backend=backend)
                assert queued.cancel() is True
                gate.set()
                assert blocker.result(timeout=60).ok
                assert queued.wait(timeout=60)
            snapshot = backend.registry.snapshot()
            assert all(row["shards_completed"] == 0 for row in snapshot)
            assert all(row["in_flight"] == 0 for row in snapshot)
        finally:
            backend.close()

    def test_cancel_mid_shard_leaves_registry_healthy(self, service,
                                                      good_worker):
        """Cancelling a running sharded job discards its result but
        must not poison the fleet for the next one."""
        backend = RemoteBackend([good_worker.label])
        try:
            running = threading.Event()
            gate = threading.Event()

            def on_event(event):
                running.set()
                gate.wait(timeout=30)  # pin the job mid-run

            job = service.submit(SUITE, progress=on_event, backend=backend)
            assert running.wait(timeout=60)
            assert job.cancel() is True
            gate.set()
            assert job.wait(timeout=120)
            assert job.status() == "cancelled"
            # Fleet is healthy and idle; the next job sails through.
            assert backend.registry.healthy() == [good_worker.label]
            assert backend.registry.in_flight() == 0
            again = service.submit(SUITE, backend=backend).result(timeout=120)
            assert again.ok, again.error_message()
        finally:
            backend.close()
