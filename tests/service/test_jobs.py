"""JobHandle: lifecycle, progress events, cancellation semantics."""

import threading

import pytest

from repro.errors import JobCancelledError
from repro.service import (
    AnalysisRequest,
    AnalysisService,
    JOB_STATUSES,
    JobHandle,
    PipelineRequest,
    SuiteRequest,
)


@pytest.fixture
def service():
    with AnalysisService() as svc:
        yield svc


class TestLifecycle:
    def test_submit_returns_job_handle(self, service):
        job = service.submit(AnalysisRequest(workload="fib", delta=0.05))
        assert isinstance(job, JobHandle)
        assert job.job_id.startswith("job-")
        envelope = job.result()
        assert envelope.ok
        assert job.status() == "done"
        assert job.done()

    def test_envelope_stamped_with_job_identity(self, service):
        job = service.submit(AnalysisRequest(workload="fib", delta=0.05))
        envelope = job.result()
        assert envelope.job_id == job.job_id
        assert envelope.backend == "inline"
        # The stamped envelope still round-trips losslessly.
        from repro.service import ResultEnvelope

        assert ResultEnvelope.from_json(envelope.to_json()) == envelope

    def test_job_ids_are_distinct_and_registered(self, service):
        jobs = [
            service.submit(AnalysisRequest(workload="fib", delta=0.05))
            for _ in range(3)
        ]
        assert len({job.job_id for job in jobs}) == 3
        for job in jobs:
            job.result()
            assert service.job(job.job_id) is job
        assert service.job("job-nope") is None
        assert set(jobs) <= set(service.jobs())

    def test_error_requests_land_in_error_status(self, service):
        job = service.submit(AnalysisRequest(workload="nope"))
        envelope = job.result()  # error envelopes return, never raise
        assert not envelope.ok
        assert job.status() == "error"

    def test_statuses_are_the_documented_five(self):
        assert JOB_STATUSES == (
            "queued", "running", "done", "error", "cancelled"
        )

    def test_result_timeout(self, service):
        release = threading.Event()
        job = service.submit(
            AnalysisRequest(workload="fib", delta=0.05),
            progress=lambda event: release.wait(timeout=10),
        )
        with pytest.raises(TimeoutError):
            job.result(timeout=0.05)
        release.set()
        assert job.result(timeout=30).ok


class TestProgressEvents:
    def test_analysis_streams_sweep_events(self, service):
        job = service.submit(AnalysisRequest(workload="fib", delta=0.05))
        job.result()
        events = list(job.events())
        kinds = [event["event"] for event in events]
        assert kinds[0] == "status" and events[0]["status"] == "running"
        assert kinds[-1] == "status" and events[-1]["status"] == "done"
        sweeps = [event for event in events if event["event"] == "sweep"]
        assert len(sweeps) == job.result().result["iterations"]
        assert all(event["job_id"] == job.job_id for event in events)
        # Sweep deltas shrink towards convergence (first one is inf).
        assert sweeps[0]["delta"] == float("inf")
        assert sweeps[-1]["delta"] <= 0.05

    def test_suite_streams_kernel_events(self, service):
        job = service.submit(
            SuiteRequest(workloads=("fib", "crc32"), delta=0.05)
        )
        job.result()
        kernels = [
            event for event in job.events() if event["event"] == "kernel"
        ]
        assert [event["name"] for event in kernels] == ["fib", "crc32"]
        assert all(event["total"] == 2 for event in kernels)
        assert [event["index"] for event in kernels] == [0, 1]
        assert all(event["converged"] for event in kernels)

    def test_pipeline_streams_stage_events(self, service):
        job = service.submit(PipelineRequest(
            stages=("fib", "crc32", "fib"), machine="rf16", delta=0.01,
        ))
        job.result()
        events = list(job.events())
        stages = [event for event in events if event["event"] == "stage"]
        assert [event["name"] for event in stages] == ["fib", "crc32", "fib"]
        # The stacked strategy also reports its pipeline-wide sweeps.
        assert any(event["event"] == "sweep" for event in events)

    def test_events_replay_for_late_subscribers(self, service):
        job = service.submit(AnalysisRequest(workload="fib", delta=0.05))
        job.result()
        first = list(job.events())
        second = list(job.events())
        assert first == second and len(first) >= 3

    def test_live_subscriber_sees_every_event(self, service):
        seen = []
        job = service.submit(
            AnalysisRequest(workload="fib", delta=0.05),
            progress=seen.append,
        )
        job.result()
        job.wait()
        # The subscriber got the same stream the handle recorded
        # (including the terminal status event).
        assert seen == list(job.events())


class TestCancellation:
    """Acceptance: cancel() for queued (never runs) and running
    (finishes, result discarded) jobs."""

    def test_cancel_queued_job_never_runs(self):
        with AnalysisService(max_workers=1) as service:
            gate = threading.Event()
            blocker = service.submit(
                AnalysisRequest(workload="fib", delta=0.05),
                progress=lambda event: gate.wait(timeout=30),
            )
            # One worker thread is blocked inside the first job, so
            # this one is still queued.
            queued = service.submit(
                AnalysisRequest(workload="crc32", delta=0.05)
            )
            assert queued.status() == "queued"
            assert queued.cancel() is True
            assert queued.status() == "cancelled"
            gate.set()
            assert blocker.result(timeout=60).ok
            # The cancelled job went terminal without ever running: no
            # "running" transition, no sweeps, just the cancel event.
            assert queued.done()
            events = list(queued.events())
            assert [event["event"] for event in events] == ["status"]
            assert events[0]["status"] == "cancelled"
            with pytest.raises(JobCancelledError):
                queued.result()
            # Cancelling again is a no-op on a terminal job.
            assert queued.cancel() is False

    def test_cancel_running_job_discards_result(self):
        with AnalysisService(max_workers=1) as service:
            gate = threading.Event()
            running = threading.Event()

            def block_once(event):
                running.set()
                gate.wait(timeout=30)

            job = service.submit(
                AnalysisRequest(workload="fib", delta=0.05),
                progress=block_once,
            )
            assert running.wait(timeout=30)
            assert job.status() == "running"
            assert job.cancel() is True
            gate.set()
            assert job.wait(timeout=60)
            # The job ran to completion but its result was discarded.
            assert job.status() == "cancelled"
            with pytest.raises(JobCancelledError):
                job.result()
            events = list(job.events())
            assert events[-1]["status"] == "cancelled"
            assert any(event["event"] == "sweep" for event in events)

    def test_cancel_done_job_is_a_noop(self, service):
        job = service.submit(AnalysisRequest(workload="fib", delta=0.05))
        assert job.result().ok
        assert job.cancel() is False
        assert job.status() == "done"


class TestEventRing:
    """The replay buffer is a bounded ring: a pathological emitter
    wraps instead of growing without bound, and the eviction count is
    surfaced in the final envelope."""

    def _handle(self, capacity):
        job = JobHandle("job-ring", AnalysisRequest(workload="fib"),
                        events_capacity=capacity)
        job._mark_running()  # emits the first status event
        return job

    def test_oldest_events_evict_at_capacity(self):
        job = self._handle(capacity=3)
        for i in range(5):
            job._emit({"event": "sweep", "iteration": i})
        assert job.events_seen() == 6  # status + 5 sweeps
        assert job.dropped_events == 3
        # Replay skips the evicted prefix; indices stay absolute.
        job._finish(None)
        indexed = [
            (index, event["event"], event.get("iteration"))
            for index, event in job.indexed_events()
        ]
        # 7 emitted in total (terminal status event included), ring
        # keeps the last 3.
        assert indexed == [
            (4, "sweep", 3), (5, "sweep", 4), (6, "status", None),
        ]

    def test_indexed_events_resume_from_cursor(self):
        job = self._handle(capacity=8)
        for i in range(3):
            job._emit({"event": "sweep", "iteration": i})
        job._finish(None)
        tail = list(job.indexed_events(after=2))
        assert [index for index, _event in tail] == [2, 3, 4]
        # A stale cursor (pointing below the ring base) lands on the
        # oldest retained event instead of failing.
        assert next(iter(job.indexed_events(after=-5)))[0] == 0

    def test_event_snapshot_is_nonblocking_with_cursor(self):
        job = self._handle(capacity=8)
        job._emit({"event": "sweep", "iteration": 0})
        events, cursor = job.event_snapshot()
        assert cursor == 2 and len(events) == 2
        events, cursor2 = job.event_snapshot(after=cursor)
        assert events == [] and cursor2 == cursor  # running job: no block

    def test_dropped_events_land_in_context_stats(self):
        with AnalysisService(events_capacity=2) as service:
            job = service.submit(AnalysisRequest(workload="fib",
                                                 delta=0.05))
            envelope = job.result()
        assert envelope.ok
        assert job.events_capacity == 2
        dropped = envelope.context_stats["dropped_events"]
        assert dropped == job.events_seen() - 2 > 0
        # The envelope still round-trips with the extra counter.
        from repro.service import ResultEnvelope

        assert ResultEnvelope.from_json(envelope.to_json()) == envelope

    def test_unbounded_enough_runs_never_perturb_stats(self, service):
        """Nothing dropped -> no dropped_events key, keeping results
        bit-identical with pre-ring envelopes."""
        envelope = service.submit(
            AnalysisRequest(workload="fib", delta=0.05)
        ).result()
        assert "dropped_events" not in envelope.context_stats


class TestRegistryBounds:
    def test_dropped_terminal_jobs_leave_the_registry(self, service):
        """The registry is weak-valued: a finished job whose handle the
        caller dropped (what serve/worker loops do) is collected
        instead of pinning its envelope and event history."""
        import gc

        job = service.submit(AnalysisRequest(workload="fib", delta=0.05))
        job.result()
        job_id = job.job_id
        assert service.job(job_id) is job
        del job
        gc.collect()
        assert service.job(job_id) is None

    def test_held_terminal_jobs_evict_fifo(self, service):
        from repro.service.service import _MAX_JOBS

        first = service.submit(AnalysisRequest(workload="fib", delta=0.05))
        first.result()
        # Flood the registry with terminal jobs whose handles are all
        # still strongly held — the FIFO cap is what bounds those.
        held = []
        with service._lock:
            for i in range(_MAX_JOBS + 10):
                job = JobHandle(f"stub-{i}", None)
                job._status = "done"
                job._terminal = True
                service._jobs[job.job_id] = job
                held.append(job)
        service.submit(AnalysisRequest(workload="fib", delta=0.05)).result()
        assert len(service._jobs) <= _MAX_JOBS + 1
        assert all(job.done() for job in held)  # handles still usable
