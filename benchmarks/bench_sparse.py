"""E15 — sparse stacked sweeps and incremental re-analysis.

Two claims behind the CSR transfer engine:

* **Same trace, less arithmetic** — the sparse sweep is numerically the
  *same* stacked affine map as the dense batched sweep, so iteration
  counts and δ-histories match sweep for sweep (asserted, always, also
  against the blockwise reference) while the per-sweep mat-vec work
  drops from ``O((m·n)²)`` to ``O(nnz)`` and the held matrices shrink
  by the measured density (0.11–0.19 across the suite).

* **Editing one block does not cost a cold run** — after an in-place
  single-block edit, ``invalidate(function, blocks=[...])`` marks the
  block dirty; the next analysis recompiles only that block, patches
  the affected rows of the cached stacked sweep and (with
  ``warm_start=True``) restarts the fixed point from the previous
  converged solution.  On the chip preset this is the headline:
  incremental re-analysis ≥5× faster than a cold run (asserted outside
  quick mode; quick mode still asserts the ≥1× floor and the patch
  actually happened).

Writes ``results/BENCH_sparse.json``.  Set ``REPRO_BENCH_QUICK=1`` for
the CI smoke variant: fewer kernels, fewer repeats, wall-clock floors
relaxed (queue-shared runners time too unreliably to gate on the full
ratio; accuracy agreement is still asserted).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core import AnalysisContext, TDFAConfig, ThermalDataflowAnalysis
from repro.core.transfer import (
    affine_merge_plan,
    compile_sweep,
    sparsify_sweep,
    sweep_density,
    sweep_signature,
)
from repro.dataflow.freq import static_profile
from repro.ir import parse_instruction
from repro.ir.cfg import reverse_postorder
from repro.regalloc import allocate_linear_scan
from repro.util import banner, format_table
from repro.workloads import load

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
KERNELS = ("fir", "crc32") if QUICK else (
    "fir", "iir", "matmul", "conv3x3", "crc32", "viterbi", "sort"
)
REPEATS = 2 if QUICK else 5
DELTA = 1e-5
#: The incremental experiment runs on the die-level chip model at the
#: chip preset's standard tolerance (matches tests/thermal/test_chip.py).
CHIP_DELTA = 0.01
CHIP_KERNEL = "matmul"
#: Headline floor — the full ratio is asserted only outside quick mode;
#: the smoke job still requires incremental to be no slower than cold.
MIN_INCREMENTAL_SPEEDUP = 5.0


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _allocated(name, machine):
    return allocate_linear_scan(load(name).function, machine).function


def _built_sweeps(function, context):
    """(dense CompiledSweep, SparseSweep) of *function*'s stacked map."""
    rpo = reverse_postorder(function)
    plan = affine_merge_plan(
        function, rpo, function.predecessors_map(),
        static_profile(function), "freq", function.entry.name,
    )
    cache = context.transfer_cache()
    compiled = {name: cache.block(function.block(name)) for name in rpo}
    n = context.model.grid.num_nodes
    dense = compile_sweep(compiled, plan, rpo, n, sweep_signature(function, rpo))
    return dense, sparsify_sweep(dense)


def test_e15_sparse_sweep_parity(machine, record_table, bench_meta):
    """Dense vs. CSR storage of the same stacked map, suite-wide."""
    rows = []
    records = []
    for name in KERNELS:
        function = _allocated(name, machine)
        results = {}
        times = {}
        for sweep in ("blockwise", "batched", "sparse"):
            def run(sweep=sweep):
                return ThermalDataflowAnalysis(
                    machine,
                    config=TDFAConfig(delta=DELTA, engine="compiled",
                                      sweep=sweep),
                ).run(function)

            times[sweep], results[sweep] = _best_of(run)

        blockwise = results["blockwise"]
        sparse = results["sparse"]
        assert sparse.converged
        # The CSR sweep is the same matrix: identical iteration trace.
        assert sparse.iterations == blockwise.iterations
        assert sparse.iterations == results["batched"].iterations
        worst = max(
            sparse.after[key].max_abs_diff(blockwise.after[key])
            for key in blockwise.after
        )
        assert worst <= 2 * DELTA, name

        dense_sweep, sparse_sweep = _built_sweeps(
            function, AnalysisContext(machine)
        )
        density = sweep_density(dense_sweep)
        stacked = dense_sweep.matrix.shape[0]
        # Per-sweep multiply-add work: two stacked mat-vecs.
        dense_flops = 2 * 2 * stacked * stacked
        sparse_flops = 2 * 2 * sparse_sweep.nnz
        rows.append(
            (
                name,
                stacked,
                density,
                sparse.iterations,
                times["batched"] * 1e3,
                times["sparse"] * 1e3,
                dense_sweep.nbytes / 1024,
                sparse_sweep.nbytes / 1024,
                dense_flops / max(sparse_flops, 1),
                worst,
            )
        )
        records.append(
            {
                "kernel": name,
                "stacked_dim": stacked,
                "density": density,
                "sweeps": sparse.iterations,
                "batched_seconds": times["batched"],
                "sparse_seconds": times["sparse"],
                "dense_nbytes": dense_sweep.nbytes,
                "sparse_nbytes": sparse_sweep.nbytes,
                "flops_ratio": dense_flops / max(sparse_flops, 1),
                "max_diff_kelvin": worst,
            }
        )

    table = format_table(
        ["kernel", "m*n", "density", "sweeps", "dense (ms)", "sparse (ms)",
         "dense (KiB)", "sparse (KiB)", "flops dense/sparse (x)",
         "max diff (K)"],
        rows,
    )
    record_table(
        "E15_sparse",
        "\n".join(
            [
                banner("E15 — dense vs. CSR stacked sweeps "
                       f"(64-entry RF, δ={DELTA:g})"),
                table,
                "",
                "Same stacked affine map, different storage: iteration",
                "counts and δ-histories are asserted identical; the CSR",
                "form pays O(nnz) per sweep and holds `density` of the",
                "dense footprint.",
            ]
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": "repro.bench-sparse/1",
        "meta": dict(bench_meta),
        "machine": "rf64",
        "delta": DELTA,
        "quick": QUICK,
        "parity": records,
    }
    # The incremental experiment appends its section below; write the
    # partial payload now so an assertion there still leaves a record.
    with open(RESULTS_DIR / "BENCH_sparse.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_e15_incremental_reanalysis(machine, record_table, benchmark, bench_meta):
    """Single-block edit on the chip preset: patch + warm start vs. cold."""
    function = _allocated(CHIP_KERNEL, machine)
    rpo = reverse_postorder(function)
    edited = rpo[-2]
    alternates = ("r1 = add r2, r3", "r1 = xor r2, r3")

    # Cold: a fresh chip context per run — block compiles, sweep
    # composition and the full fixed point from ambient.
    def cold_run():
        return AnalysisContext.for_chip(machine).analyze(
            function, delta=CHIP_DELTA, sweep="sparse"
        )

    cold_seconds, cold = _best_of(cold_run)
    assert cold.converged and cold.sweep == "sparse"

    # Incremental: one warm context; each repeat edits the block in
    # place (alternating payloads so every run really is a new edit),
    # marks it dirty, and re-analyzes through the patched sweep.
    context = AnalysisContext.for_chip(machine)
    context.analyze(function, delta=CHIP_DELTA, sweep="sparse")
    state = {"flip": 0}

    def incremental_run():
        function.blocks[edited].instructions[0] = parse_instruction(
            alternates[state["flip"]]
        )
        state["flip"] ^= 1
        context.invalidate(function, blocks=[edited])
        return context.analyze(
            function, delta=CHIP_DELTA, sweep="sparse", warm_start=True
        )

    incremental_seconds, incremental = _best_of(incremental_run)
    assert incremental.converged
    assert context.stats["sweep_patches"] >= REPEATS
    assert context.stats["sweep_compiles"] == 1  # only the original build

    # Accuracy: the patched sweep must equal a cold recompile bit for
    # bit, so a cold-initialized run through it reproduces a fresh
    # context's states to 1e-12 (checked at tight tolerance, where both
    # runs pin the fixed point; the δ=0.01 timed runs above only agree
    # to the convergence band).
    via_patched = context.analyze(function, delta=1e-9, sweep="sparse")
    reference = AnalysisContext.for_chip(machine).analyze(
        function, delta=1e-9, sweep="sparse"
    )
    worst = max(
        via_patched.block_out[name].max_abs_diff(reference.block_out[name])
        for name in reference.block_out
    )
    assert worst <= 1e-12

    speedup = cold_seconds / incremental_seconds
    assert speedup >= 1.0
    if not QUICK:
        assert speedup >= MIN_INCREMENTAL_SPEEDUP, speedup

    # Memory: the CSR sweep's held footprint vs. a dense context's.
    dense_context = AnalysisContext.for_chip(machine)
    dense_context.analyze(function, delta=CHIP_DELTA, sweep="batched")
    sparse_nbytes = context.stats["transfer_nbytes"]
    dense_nbytes = dense_context.stats["transfer_nbytes"]
    assert sparse_nbytes < dense_nbytes

    table = format_table(
        ["run", "iterations", "seconds", "transfer cache (KiB)"],
        [
            ("cold", cold.iterations, cold_seconds, dense_nbytes / 1024),
            ("incremental", incremental.iterations, incremental_seconds,
             sparse_nbytes / 1024),
        ],
    )
    record_table(
        "E15_incremental",
        "\n".join(
            [
                banner("E15 — incremental re-analysis after a one-block "
                       f"edit (chip preset, δ={CHIP_DELTA:g})"),
                table,
                "",
                f"edited block: {edited!r}; speedup: {speedup:.1f}x",
                "incremental = recompile 1 block + patch sweep rows +",
                "warm-started fixed point; cold = fresh context.",
            ]
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_sparse.json"
    if path.exists():  # the parity experiment writes the base payload
        payload = json.loads(path.read_text())
    else:
        payload = {
            "schema": "repro.bench-sparse/1",
            "meta": dict(bench_meta),
            "machine": "rf64",
            "quick": QUICK,
        }
    payload["incremental"] = {
        "chip_kernel": CHIP_KERNEL,
        "delta": CHIP_DELTA,
        "edited_block": edited,
        "cold_seconds": cold_seconds,
        "cold_iterations": cold.iterations,
        "incremental_seconds": incremental_seconds,
        "incremental_iterations": incremental.iterations,
        "speedup": speedup,
        "max_diff_kelvin": worst,
        "transfer_nbytes_dense": dense_nbytes,
        "transfer_nbytes_sparse": sparse_nbytes,
        "nbytes_reduction": 1.0 - sparse_nbytes / dense_nbytes,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    benchmark(incremental_run)
