"""E17 — schedule search: composed scoring vs sequential re-analysis.

The ``repro.sched`` subsystem turns the analyzer into an optimizer by
scoring every candidate schedule through cached affine summaries — one
thermal analysis per *distinct stage*, then K mat-vecs per candidate —
instead of re-running the chained analysis per ordering.  This bench
measures exactly that amortization:

* **baseline** — sequential re-analysis: for each sampled candidate,
  chain a fresh :class:`ThermalDataflowAnalysis` run per stage,
  threading exit states (what a feedback-driven scheduler would pay);
* **cold** — a fresh :class:`ScheduleEvaluator` sweeping the full
  candidate space, compiling each distinct stage summary on first use;
* **warm** — the same sweep against the warm context: every summary is
  a cache hit, so the rate *is* the composed-scoring throughput
  (candidates/sec, the headline number).

Asserts that warm composed scoring beats sequential re-analysis by
>= 5x per candidate (skipped under ``REPRO_BENCH_QUICK``; queue-shared
CI runners time too unreliably for a perf gate).  Also runs the
end-to-end exhaustive search for the record — the argmin and its
improvement over the identity schedule land in the JSON.  Writes
``results/BENCH_schedule.json`` (schema ``repro.bench-schedule/1``,
documented in README.md) so CI archives the trajectory.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.arch import rf64
from repro.core import AnalysisContext, TDFAConfig, ThermalDataflowAnalysis
from repro.regalloc import allocate_linear_scan
from repro.sched import (
    ScheduleEvaluator,
    ScheduleSpace,
    objective_by_name,
    optimize_schedule,
    stage_keys_for,
)
from repro.thermal import RFThermalModel
from repro.util import banner, format_table
from repro.workloads import load

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
STAGES = ("fib", "crc32", "fir") if QUICK else ("fib", "crc32", "fir",
                                                "iir", "matmul")
BASELINE_SAMPLE = 3 if QUICK else 12
WARM_REPEATS = 2 if QUICK else 5
DELTA = 0.01
MIN_SPEEDUP = 5.0


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_e17_schedule_search(record_table, benchmark, bench_meta):
    machine = rf64()
    workloads = [load(name) for name in STAGES]
    allocated = {
        wl.function.name: allocate_linear_scan(wl.function, machine).function
        for wl in workloads
    }
    # One allocation per stage, shared by every evaluator below — the
    # same identity sharing AnalysisService.allocation provides, so the
    # warm pass genuinely hits the context summary cache.
    allocator = lambda function, policy: allocated[function.name]  # noqa: E731

    context = AnalysisContext(machine)
    space = ScheduleSpace(stage_keys_for(workloads))
    objective = objective_by_name("peak")
    candidates = list(space.enumerate_candidates())

    def sweep():
        evaluator = ScheduleEvaluator(
            context, workloads, objective, allocator=allocator
        )
        return [evaluator.evaluate(candidate) for candidate in candidates]

    cold_s, cold_scores = _best_of(sweep, 1)
    warm_s, warm_scores = _best_of(sweep, WARM_REPEATS)
    assert warm_scores == cold_scores  # caching never changes a score
    warm_per_candidate = warm_s / len(candidates)
    candidates_per_sec = len(candidates) / warm_s

    # Baseline: what each candidate costs without summaries — a fresh
    # chained analysis threading exit states stage to stage.
    analysis = ThermalDataflowAnalysis(
        machine=machine,
        model=RFThermalModel(machine.geometry, energy=machine.energy),
        config=TDFAConfig(delta=DELTA),
    )
    sample = candidates[:BASELINE_SAMPLE]
    started = time.perf_counter()
    for candidate in sample:
        state = analysis.model.ambient_state()
        for slot in candidate.order:
            result = analysis.run(
                allocated[workloads[slot].function.name], entry_state=state
            )
            state = result.exit_state()
    baseline_s = time.perf_counter() - started
    baseline_per_candidate = baseline_s / len(sample)
    speedup = baseline_per_candidate / max(warm_per_candidate, 1e-12)

    # End-to-end search for the record: the argmin and what it buys.
    report = optimize_schedule(
        list(STAGES), context=context, strategy="exhaustive",
        budget=10 * space.size(), delta=DELTA, allocator=allocator,
    )
    assert report.exhausted
    assert report.best_score <= report.identity_score

    rows = [
        ("re-analysis (baseline)", baseline_per_candidate * 1e3,
         1.0 / baseline_per_candidate, 1.0),
        ("composed, cold", cold_s / len(candidates) * 1e3,
         len(candidates) / cold_s,
         baseline_per_candidate / (cold_s / len(candidates))),
        ("composed, warm", warm_per_candidate * 1e3, candidates_per_sec,
         speedup),
    ]
    table = format_table(
        ["scoring path", "per candidate (ms)", "candidates/sec",
         "speedup (x)"],
        rows,
    )
    record_table(
        "E17_schedule",
        "\n".join([
            banner(
                f"E17 — schedule search over {len(STAGES)} stages "
                f"({space.size()} candidates, rf64, δ={DELTA:g})"
            ),
            table,
            "",
            f"argmin {report.best_names} @ {report.best_score:.4f} K "
            f"(identity {report.identity_score:.4f} K, "
            f"-{report.improvement_kelvin:.4f} K)",
            f"search: {report.candidates_evaluated} evaluated, "
            f"{report.eval_memo_hits} memo hits",
        ]),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": "repro.bench-schedule/1",
        "meta": dict(bench_meta),
        "machine": "rf64",
        "delta": DELTA,
        "quick": QUICK,
        "stages": list(STAGES),
        "space_size": space.size(),
        "baseline_sample": len(sample),
        "results": {
            "baseline_seconds_per_candidate": baseline_per_candidate,
            "cold_seconds_per_candidate": cold_s / len(candidates),
            "warm_seconds_per_candidate": warm_per_candidate,
        },
        "argmin": {
            "order": list(report.best_order),
            "names": list(report.best_names),
            "score_kelvin": report.best_score,
            "identity_kelvin": report.identity_score,
            "improvement_kelvin": report.improvement_kelvin,
        },
        "headline": {
            "candidates_per_sec": candidates_per_sec,
            "warm_speedup_x": speedup,
        },
    }
    with open(RESULTS_DIR / "BENCH_schedule.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if not QUICK:
        # The subsystem's reason to exist: composed scoring amortizes.
        assert speedup >= MIN_SPEEDUP, speedup

    benchmark(sweep)
