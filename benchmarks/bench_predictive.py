"""E7 — predictive pre-allocation analysis vs precise post-assignment.

Paper §4: the analysis "makes the most sense if applied after register
assignment ... the more ambitious possibility ... would be to develop
predictive analyses that would be performed at earlier stages of
compilation, i.e., before register allocation and assignment".

Placements compared against emulated ground truth:
* exact (post-assignment, the paper's easy case);
* policy-simulated placement (our predictive model, deterministic and
  randomized policies);
* uniform placement (zero-knowledge lower bound).
"""

from __future__ import annotations

import pytest

from repro.core import (
    AllocationPlacement,
    PolicyPlacement,
    UniformPlacement,
    analyze,
    rank_critical_variables,
)
from repro.regalloc import FirstFreePolicy, RandomPolicy, allocate_linear_scan
from repro.sim import compare_to_emulation
from repro.util import banner, format_table
from repro.workloads import load

WORKLOADS = ["fir", "iir", "fib"]


@pytest.fixture(scope="module")
def predictive_rows(machine, emulator):
    rows = []
    correlations: dict[str, list[float]] = {}
    for name in WORKLOADS:
        wl = load(name)
        allocation = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
        emulation = emulator.run(
            allocation.function, args=wl.args, memory=dict(wl.memory)
        )
        # Ground truth for the stochastic policy: a *random-policy* binary
        # (predictions must be scored against the policy they model).
        random_allocation = allocate_linear_scan(
            wl.function, machine, RandomPolicy(seed=3)
        )
        random_emulation = emulator.run(
            random_allocation.function, args=wl.args, memory=dict(wl.memory)
        )

        placements = {
            "exact (post-assign)": AllocationPlacement(allocation, 64),
            "predictive (first-free)": PolicyPlacement(
                wl.function, machine,
                policy_factory=lambda seed: FirstFreePolicy(), samples=1,
            ),
            "predictive (random, 16 samples)": PolicyPlacement(
                wl.function, machine,
                policy_factory=lambda seed: RandomPolicy(seed=seed), samples=16,
            ),
            "uniform (zero knowledge)": UniformPlacement(machine),
        }
        for label, placement in placements.items():
            result = analyze(wl.function, machine, delta=0.01, placement=placement)
            truth = (
                random_emulation
                if label == "predictive (random, 16 samples)"
                else emulation
            )
            report = compare_to_emulation(result.peak_state(), truth)
            rows.append((name, label, report.pearson_r, report.rmse_kelvin))
            correlations.setdefault(label, []).append(report.pearson_r)

        # The caveat row: a prediction for the *wrong* policy is worthless —
        # scoring the random-policy placement against first-free reality.
        mismatch_result = analyze(
            wl.function, machine, delta=0.01,
            placement=placements["predictive (random, 16 samples)"],
        )
        mismatch = compare_to_emulation(mismatch_result.peak_state(), emulation)
        rows.append(
            (name, "mismatched (random model, ff reality)",
             mismatch.pearson_r, mismatch.rmse_kelvin)
        )
        correlations.setdefault(
            "mismatched (random model, ff reality)", []
        ).append(mismatch.pearson_r)
    return rows, correlations


def test_e7_predictive_vs_precise(predictive_rows, machine, record_table,
                                  benchmark):
    rows, correlations = predictive_rows
    table = format_table(
        ["workload", "placement", "pearson r", "rmse (K)"], rows
    )

    means = {
        label: sum(values) / len(values)
        for label, values in correlations.items()
    }
    summary = format_table(
        ["placement", "mean pearson r"],
        sorted(means.items(), key=lambda kv: -kv[1]),
    )
    record_table(
        "E7_predictive",
        "\n".join(
            [
                banner("E7 — pre-allocation predictive analysis"),
                table,
                "",
                summary,
            ]
        ),
    )

    # Shape: exact ≥ predictive(first-free) >> uniform; the deterministic
    # policy's predictive mode is essentially exact (fully predictable).
    assert means["predictive (first-free)"] == pytest.approx(
        means["exact (post-assign)"], abs=0.05
    )
    assert means["predictive (first-free)"] > means["uniform (zero knowledge)"]
    # The stochastic policy's expected map predicts its own realizations
    # better than zero knowledge does...
    assert means["predictive (random, 16 samples)"] > means[
        "uniform (zero knowledge)"
    ]
    # ...while modelling the *wrong* policy is no better than nothing —
    # the predictive mode's fidelity hinges on knowing the allocator.
    assert means["mismatched (random model, ff reality)"] < 0.5

    wl = load("fir")
    benchmark(
        lambda: PolicyPlacement(
            wl.function, machine,
            policy_factory=lambda seed: FirstFreePolicy(), samples=1,
        )
    )
