"""E5 — the chessboard caveat: register pressure sweep.

Paper §2: *"The chessboard policy, however, only works if the program
only uses half of the registers in the RF.  Indeed, if register pressure
is high, then all registers will be used, and may be accessed
repeatedly.  If certain registers are accessed more than others, then
thermal gradients may still appear and reliability can suffer even
trying to apply the chessboard pattern."*

Synthetic workloads hold exactly k accumulators live with skewed access
frequencies (every 4th is "hot").  Two complementary measurements:

* **structure** — under the chessboard policy, the number of *adjacent*
  used register pairs.  While pressure ≤ half the RF this is exactly 0
  (one colour class suffices: no two same-colour cells touch); past half
  the fallback colour engages and adjacency appears — the pattern's
  collapse is structural, not statistical.
* **thermal** — emulated map gradient / σ per policy, showing the
  chessboard's homogeneity degrading as pressure crosses half.
"""

from __future__ import annotations

import pytest

from repro.regalloc import ChessboardPolicy, FirstFreePolicy, allocate_linear_scan
from repro.sim import ThermalEmulator
from repro.util import banner, format_table
from repro.workloads import pressure_program

LEVELS = [8, 16, 24, 32, 40, 48]
ITERATIONS = 40


def adjacent_used_pairs(allocation, machine) -> int:
    """Pairs of used registers at Manhattan distance 1."""
    used = sorted(allocation.registers_used())
    geometry = machine.geometry
    return sum(
        1
        for i, a in enumerate(used)
        for b in used[i + 1:]
        if geometry.manhattan_distance(a, b) == 1
    )


@pytest.fixture(scope="module")
def sweep_rows(machine, emulator):
    rows = []
    stats = {}
    for level in LEVELS:
        wl = pressure_program(level, iterations=ITERATIONS)
        ff_alloc = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
        cb_alloc = allocate_linear_scan(wl.function, machine, ChessboardPolicy())
        ff_state = emulator.steady_map(ff_alloc.function)
        cb_state = emulator.steady_map(cb_alloc.function)
        adjacency = adjacent_used_pairs(cb_alloc, machine)
        stats[level] = {
            "cb_sigma": cb_state.std,
            "cb_gradient": cb_state.max_gradient(),
            "ff_gradient": ff_state.max_gradient(),
            "adjacency": adjacency,
        }
        rows.append(
            (
                level,
                ff_state.max_gradient(),
                cb_state.max_gradient(),
                cb_state.std,
                adjacency,
                cb_state.max_gradient() / max(ff_state.max_gradient(), 1e-9),
            )
        )
    return rows, stats


def test_e5_pressure_sweep(sweep_rows, machine, record_table, benchmark):
    rows, stats = sweep_rows
    table = format_table(
        [
            "live vars",
            "ff gradient (K)",
            "cb gradient (K)",
            "cb sigma (K)",
            "cb adjacent pairs",
            "cb/ff gradient",
        ],
        rows,
    )
    record_table(
        "E5_pressure_sweep",
        "\n".join(
            [
                banner("E5 — chessboard vs pressure (64-entry RF, half = 32)"),
                table,
                "",
                "paper §2: while pressure <= half the RF the chessboard keeps",
                "used cells non-adjacent (0 adjacent pairs); past half, the",
                "fallback colour engages, adjacency appears and homogeneity",
                "degrades.",
            ]
        ),
    )

    # Structural collapse: no adjacency while one colour class suffices...
    assert stats[8]["adjacency"] == 0
    assert stats[16]["adjacency"] == 0
    # ...and unavoidable adjacency once pressure exceeds half the RF.
    assert stats[40]["adjacency"] > 0
    assert stats[48]["adjacency"] > 0

    # Thermal degradation: homogeneity (σ) worsens past the caveat point.
    assert stats[48]["cb_sigma"] > stats[8]["cb_sigma"]

    # Low-pressure advantage: the Fig. 1(c) regime.
    assert stats[8]["cb_gradient"] < 0.9 * stats[8]["ff_gradient"]

    wl = pressure_program(48, iterations=ITERATIONS)
    local_emulator = ThermalEmulator(machine)

    def run():
        allocation = allocate_linear_scan(wl.function, machine, ChessboardPolicy())
        return local_emulator.steady_map(allocation.function)

    benchmark(run)
