"""F2 — Fig. 2: the iterative thermal data flow analysis.

Regenerates the behaviour of the pseudocode: iterations until every
instruction's thermal state changes by less than δ, across a δ sweep;
plus the paper's non-convergence discussion — with temperature-dependent
leakage cranked up, the analysis genuinely fails to converge and the
iteration-budget detector fires.
"""

from __future__ import annotations

import pytest

from repro.arch import EnergyModel, MachineDescription, RegisterFileGeometry
from repro.core import TDFAConfig, ThermalDataflowAnalysis, analyze
from repro.regalloc import allocate_linear_scan
from repro.util import banner, format_table
from repro.workloads import load

DELTAS = [1.0, 0.3, 0.1, 0.03, 0.01, 0.003, 0.001]
WORKLOADS = ["fir", "iir", "crc32"]


@pytest.fixture(scope="module")
def allocated(machine):
    result = {}
    for name in WORKLOADS:
        wl = load(name)
        result[name] = allocate_linear_scan(wl.function, machine).function
    return result


def test_fig2_delta_sweep(machine, allocated, record_table, benchmark):
    rows = []
    per_workload_iters: dict[str, list[int]] = {name: [] for name in WORKLOADS}
    for name in WORKLOADS:
        for delta in DELTAS:
            result = analyze(allocated[name], machine, delta=delta)
            rows.append(
                (name, delta, result.iterations, str(result.converged),
                 result.final_delta)
            )
            per_workload_iters[name].append(result.iterations)

    table = format_table(
        ["workload", "delta (K)", "iterations", "converged", "final delta (K)"],
        rows,
        float_format="{:.4g}",
    )
    record_table(
        "F2_fig2_convergence",
        "\n".join([banner("F2 / Fig.2 — iterations to convergence vs delta"), table]),
    )

    # Shape: iteration count is non-decreasing as delta shrinks, and every
    # linear-model run converges (the contraction argument of DESIGN.md).
    for name in WORKLOADS:
        iters = per_workload_iters[name]
        assert all(b >= a for a, b in zip(iters, iters[1:])), name
    assert all(row[3] == "True" for row in rows)

    benchmark(lambda: analyze(allocated["fir"], machine, delta=0.01))


def test_fig2_nonconvergence_detector(record_table, benchmark):
    """Leakage feedback strong enough for thermal runaway: the analysis
    must *not* converge, and must say so (the paper's §4 prescription)."""
    runaway_machine = MachineDescription(
        name="rf64-runaway",
        geometry=RegisterFileGeometry(rows=8, cols=8),
        energy=EnergyModel(leakage_power=5e-3, leakage_temp_coeff=0.5),
    )
    wl = load("fib")
    allocated = allocate_linear_scan(wl.function, runaway_machine).function

    def run():
        analysis = ThermalDataflowAnalysis(
            machine=runaway_machine,
            config=TDFAConfig(delta=0.001, max_iterations=150),
        )
        return analysis.run(allocated)

    result = benchmark(run)
    assert not result.converged

    record_table(
        "F2_nonconvergence",
        "\n".join(
            [
                banner("F2 — non-convergence under leakage runaway"),
                f"workload=fib  leakage=5mW/cell  beta=0.5 1/K",
                f"converged={result.converged}  iterations={result.iterations}",
                f"final sweep delta={result.final_delta:.4g} K "
                f"(threshold 0.001 K)",
                "paper §4: non-convergence => thermal state too difficult to "
                "predict; re-optimize the program",
            ]
        ),
    )
