"""E9 — the §4 compromise: bank switch-off vs thermal spreading.

Paper §4: power gating of register banks "could not theoretically be
applied after the spread register assignment, and a compromise between
these types of techniques for different optimization metrics can be
explored at the compiler level."

On a 4-bank 64-entry RF, each assignment policy is scored on both axes:
thermal homogeneity (σ, gradient — spreading's win) and mean bank idle
fraction (gating's win).  The asserted shape: the concentrating policy
(first-free) maximizes gating opportunity, the spreading policies
(chessboard, round-robin) destroy it.
"""

from __future__ import annotations

import pytest

from repro.arch import banked_rf64
from repro.opt import analyze_banking
from repro.regalloc import allocate_linear_scan, default_policies
from repro.sim import ThermalEmulator
from repro.util import banner, format_table
from repro.workloads import load

WORKLOAD = "fir"


@pytest.fixture(scope="module")
def banked_machine():
    return banked_rf64(banks=4)


@pytest.fixture(scope="module")
def banking_rows(banked_machine):
    emulator = ThermalEmulator(banked_machine)
    wl = load(WORKLOAD)
    rows = []
    stats = {}
    for policy in default_policies(seed=1):
        allocation = allocate_linear_scan(wl.function, banked_machine, policy)
        state = emulator.steady_map(
            allocation.function, memory=dict(wl.memory)
        )
        report = analyze_banking(allocation.function, banked_machine)
        stats[policy.name] = (state, report)
        rows.append(
            (
                policy.name,
                state.std,
                state.max_gradient(),
                report.mean_idle,
                report.leakage_saved * 1e3,
            )
        )
    return wl, rows, stats


def test_e9_banking_vs_spreading(banking_rows, banked_machine, record_table,
                                 benchmark):
    wl, rows, stats = banking_rows
    table = format_table(
        ["policy", "sigma (K)", "gradient (K)", "bank idle frac",
         "leak saved (mW)"],
        rows,
    )
    record_table(
        "E9_banking",
        "\n".join(
            [
                banner("E9 — bank switch-off vs thermal spreading (4 banks)"),
                table,
                "",
                "paper §4: spreading policies homogenize the map but forfeit",
                "bank power gating; concentrating policies do the opposite.",
            ]
        ),
    )

    ff_state, ff_bank = stats["first-free"]
    cb_state, cb_bank = stats["chessboard"]
    rr_state, rr_bank = stats["round-robin"]

    # The compromise, both directions:
    # concentration -> gating opportunity, spreading -> none.
    assert ff_bank.mean_idle > 0.3
    assert cb_bank.mean_idle < ff_bank.mean_idle
    assert rr_bank.mean_idle < ff_bank.mean_idle
    # spreading -> homogeneity, concentration -> hot spots.
    assert cb_state.std < ff_state.std

    def run():
        allocation = allocate_linear_scan(wl.function, banked_machine)
        return analyze_banking(allocation.function, banked_machine)

    benchmark(run)
