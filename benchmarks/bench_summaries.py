"""E10 — compositional analysis via affine function summaries.

The reproduction's extension of the paper's §5 long-term goal
("comprehensive data flow thermal analyses"): each kernel's analysis is
extracted once as an affine exit map and multi-kernel schedules are then
evaluated by composition.  The bench verifies composition accuracy
against direct chained analyses and measures the amortization: summary
application is orders of magnitude cheaper than re-analysis.
"""

from __future__ import annotations

import time

import pytest

from repro.arch import rf16
from repro.core import (
    TDFAConfig,
    ThermalDataflowAnalysis,
    compose_pipeline,
    summarize_function,
)
from repro.regalloc import allocate_linear_scan
from repro.thermal import RFThermalModel
from repro.util import banner, format_table
from repro.workloads import load

KERNELS = ("fib", "crc32", "dct8")


@pytest.fixture(scope="module")
def setup():
    machine = rf16()
    model = RFThermalModel(machine.geometry, energy=machine.energy)
    functions = {
        name: allocate_linear_scan(load(name).function, machine).function
        for name in KERNELS
    }
    extraction_ms = {}
    summaries = {}
    for name, func in functions.items():
        started = time.perf_counter()
        summaries[name] = summarize_function(func, machine, model=model,
                                             delta=0.002)
        extraction_ms[name] = (time.perf_counter() - started) * 1e3
    return machine, model, functions, summaries, extraction_ms


def test_e10_summary_composition(setup, record_table, benchmark):
    machine, model, functions, summaries, extraction_ms = setup

    # Three pipeline schedules; each verified against chained analyses.
    schedules = [
        ("fib", "crc32"),
        ("crc32", "dct8", "fib"),
        ("dct8", "fib", "crc32", "dct8"),
    ]
    analysis = ThermalDataflowAnalysis(
        machine=machine, model=model, config=TDFAConfig(delta=0.002)
    )
    rows = []
    for schedule in schedules:
        started = time.perf_counter()
        state = model.ambient_state()
        for name in schedule:
            state = analysis.run(functions[name], entry_state=state).exit_state()
        direct_ms = (time.perf_counter() - started) * 1e3

        started = time.perf_counter()
        composed = compose_pipeline([summaries[n] for n in schedule])
        predicted = composed.apply(model.ambient_state())
        composed_ms = (time.perf_counter() - started) * 1e3

        error = state.max_abs_diff(predicted)
        rows.append(
            ("->".join(schedule), direct_ms, composed_ms,
             direct_ms / max(composed_ms, 1e-6), error)
        )
        # Composition must reproduce the direct chain within analysis δ.
        assert error < 0.05, schedule

    extraction = format_table(
        ["kernel", "extraction (ms)", "contraction"],
        [
            (name, extraction_ms[name], summaries[name].contraction_factor())
            for name in KERNELS
        ],
    )
    table = format_table(
        ["schedule", "direct (ms)", "composed (ms)", "speedup (x)",
         "max err (K)"],
        rows,
    )
    record_table(
        "E10_summaries",
        "\n".join(
            [
                banner("E10 — affine summary composition (16-entry RF)"),
                extraction,
                "",
                table,
                "",
                "summaries amortize: extract once per kernel, evaluate any",
                "schedule with mat-vecs.",
            ]
        ),
    )

    # Amortization shape: once extracted, evaluating a schedule is at
    # least 10x faster than re-running the chained analysis.
    assert all(row[3] > 10.0 for row in rows)

    pipeline = [summaries[n] for n in ("fib", "crc32", "dct8")]
    benchmark(lambda: compose_pipeline(pipeline).apply(model.ambient_state()))
