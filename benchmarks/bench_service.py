"""E14 — service backends: submit/round-trip overhead per execution path.

The v2 service protocol executes jobs through pluggable backends; this
bench measures what each path costs on top of the raw analysis work:

* ``inline`` — the default: the request runs on the service thread
  pool in-process, against the shared contexts (the v1 semantics);
* ``process`` — local worker processes, each with its own warm
  service; suite kernels shard round-robin across the pool and the
  per-worker reports merge back (request/result dicts cross the
  process boundary);
* ``remote`` — the envelope protocol over real TCP sockets to
  ``repro worker`` servers (here: two in-process servers on ephemeral
  localhost ports, so the numbers include JSON encode/decode and
  socket round-trips but no network distance).

Two measurements per backend: the *small-suite* round-trip (5 kernels,
the real workload) and the *null* round-trip (a ``workloads`` listing —
no analysis at all, so the time **is** the protocol overhead).

Asserts correctness only — every backend agrees with inline within 2δ
per kernel and merged stats equal the per-worker sums; dispatch
overhead ratios are recorded, not gated (queue-shared CI runners time
too unreliably).  Writes ``results/BENCH_service.json`` (schema
``repro.bench-service/1``, documented in README.md) so CI archives the
trajectory.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.service import (
    AnalysisService,
    RemoteBackend,
    SuiteRequest,
    WorkerServer,
    WorkloadListRequest,
)
from repro.util import banner, format_table
from repro.workloads import small_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
REPEATS = 3 if QUICK else 5
NULL_REPEATS = 10 if QUICK else 50
DELTA = 0.01


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _peaks(envelope):
    return {
        record["name"]: record["peak_kelvin"]
        for record in envelope.result["report"]["results"]
    }


def test_e14_backend_roundtrips(record_table, benchmark, bench_meta):
    suite_request = SuiteRequest(
        workloads=tuple(wl.name for wl in small_suite()), delta=DELTA
    )
    null_request = WorkloadListRequest()

    service = AnalysisService(max_workers=4)
    workers = [WorkerServer().start(), WorkerServer().start()]
    remote = RemoteBackend([worker.label for worker in workers])
    process = service.process_backend(2)

    # Every backend goes through the same submit()/JobHandle machinery
    # (inline included), so the measured deltas isolate the backend —
    # IPC+pickle for process, JSON+TCP for remote — not the shared job
    # plumbing.
    def roundtrip(backend):
        if backend is None:
            return service.submit(suite_request).result()
        return service.submit(suite_request, backend=backend).result()

    def null_roundtrip(backend):
        if backend is None:
            return service.submit(null_request).result()
        return service.submit(null_request, backend=backend).result()

    try:
        rows = []
        results = {}
        for name, backend in (("inline", None), ("process", process),
                              ("remote", remote)):
            # Warm first (pool spawn, socket connect, cache fill), then
            # measure the steady-state round-trip.
            envelope = roundtrip(backend)
            assert envelope.ok, (name, envelope.error)
            suite_s, envelope = _best_of(lambda: roundtrip(backend), REPEATS)
            null_s, null_env = _best_of(
                lambda: null_roundtrip(backend), NULL_REPEATS
            )
            assert envelope.ok and null_env.ok
            results[name] = {
                "suite_seconds": suite_s,
                "null_roundtrip_seconds": null_s,
                "envelope": envelope,
            }
            rows.append((name, suite_s * 1e3, null_s * 1e3))

        # Correctness: every backend lands within 2δ of inline on every
        # kernel, and sharded stats are genuine per-worker sums.
        inline_peaks = _peaks(results["inline"]["envelope"])
        worst = 0.0
        for name in ("process", "remote"):
            peaks = _peaks(results[name]["envelope"])
            assert set(peaks) == set(inline_peaks), name
            worst = max(
                worst,
                max(abs(peaks[k] - inline_peaks[k]) for k in peaks),
            )
            envelope = results[name]["envelope"]
            summed: dict = {}
            for info in envelope.result["workers"]:
                for key, value in info["context_stats"].items():
                    summed[key] = summed.get(key, 0) + value
            assert envelope.context_stats == summed, name
        assert worst <= 2 * DELTA, worst

        table = format_table(
            ["backend", "small suite (ms)", "null round-trip (ms)"], rows
        )
        inline_null = results["inline"]["null_roundtrip_seconds"]
        record_table(
            "E14_service",
            "\n".join([
                banner(
                    f"E14 — service backend round-trips "
                    f"(5-kernel small suite, δ={DELTA:g}, "
                    f"2 workers per sharding backend)"
                ),
                table,
                "",
                "null round-trip = a workloads listing through "
                "submit()/JobHandle on every backend: pure dispatch "
                "overhead",
                f"(inline null round-trip {inline_null * 1e3:.2f} ms; "
                f"process adds IPC+pickle, remote adds JSON+TCP)",
                f"cross-backend agreement: max |d peak| = {worst:.2e} K "
                f"(bound 2δ = {2 * DELTA:g} K)",
            ]),
        )

        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "repro.bench-service/1",
            "meta": dict(bench_meta),
            "machine": "rf64",
            "delta": DELTA,
            "quick": QUICK,
            "kernels": list(suite_request.workloads),
            "workers_per_backend": 2,
            "agreement": {
                "max_peak_diff_kelvin": worst,
                "bound_kelvin": 2 * DELTA,
            },
            "results": {
                name: {
                    "suite_seconds": data["suite_seconds"],
                    "null_roundtrip_seconds": data["null_roundtrip_seconds"],
                }
                for name, data in results.items()
            },
            "headline": {
                "process_overhead_x": (
                    results["process"]["null_roundtrip_seconds"] / inline_null
                ),
                "remote_overhead_x": (
                    results["remote"]["null_roundtrip_seconds"] / inline_null
                ),
            },
        }
        with open(RESULTS_DIR / "BENCH_service.json", "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

        benchmark(lambda: roundtrip(None))
    finally:
        remote.close()
        for worker in workers:
            worker.close()
        service.close()
