"""E13 — cross-function pipelines: stacked / composed vs. sequential.

Real schedules run *sequences* of kernels whose thermal state carries
from one to the next; the pipeline subsystem analyzes such a sequence as
one thermal program (entry of stage ``k+1`` = exit of stage ``k``) with
three interchangeable strategies (:mod:`repro.core.pipeline_runner`):

* ``sequential`` — the per-kernel carry-through reference: K analyses,
  each through a *fresh* context (what a user pays today, re-analyzing
  a schedule kernel by kernel);
* ``stacked (warm)`` — the whole pipeline pre-composed into one stacked
  ``(Σ m_k·n, Σ m_k·n)`` affine fixed point, served from the shared
  context's pipeline cache on re-analysis;
* ``composed (warm)`` — exact affine summary composition: one linear
  solve per *distinct* kernel, then two mat-vecs per stage — O(1) per
  repeated kernel.

Asserts the correctness claim (all three strategies agree within 2·δ on
a small-suite pipeline with repeats) and the performance claim (warm
stacked and composed re-analysis of the 10-stage pipeline both ≥2× over
sequential per-kernel runs).  Writes ``results/BENCH_pipeline.json`` so
CI can archive the perf trajectory.  Set ``REPRO_BENCH_QUICK=1`` for
the CI smoke variant: fewer repeats, speedups recorded but *not*
asserted — queue-shared runners time too unreliably to gate on
wall-clock ratios (the 2δ agreement is still asserted).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core import AnalysisContext
from repro.core.pipeline_runner import run_pipeline
from repro.regalloc import allocate_linear_scan
from repro.thermal import RFThermalModel
from repro.util import banner, format_table
from repro.workloads import load, small_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
REPEATS = 3 if QUICK else 5
DELTA = 1e-5
#: The 10-stage pipeline: small-suite kernels with repeats — repeats are
#: what the identity-keyed caches and the composed strategy amortize.
STAGE_NAMES = (
    "fir", "crc32", "fib", "fir", "dct8",
    "crc32", "fib", "fir", "iir", "crc32",
)
MIN_WARM_SPEEDUP = 2.0


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_e13_pipeline_strategies(machine, record_table, benchmark, bench_meta):
    model = RFThermalModel(machine.geometry, energy=machine.energy)
    # One Workload object per distinct kernel: the same identity the
    # service's workload cache would serve, so repeated stages alias.
    workloads = {name: load(name) for name in set(STAGE_NAMES)}
    stages = [workloads[name] for name in STAGE_NAMES]
    assert len(stages) == 10

    # Allocate each distinct kernel once, up front, and serve the same
    # allocated objects to every timed run — the identity the service's
    # allocation cache provides.  Without this every run_pipeline call
    # would allocate fresh Function objects and the identity-keyed
    # block/sweep/pipeline/solve caches could never hit, so the "warm"
    # measurements would not measure warmth at all.
    stage_allocations = {
        id(workload.function): allocate_linear_scan(
            workload.function, machine
        ).function
        for workload in workloads.values()
    }

    def allocator(function, _policy):
        return stage_allocations[id(function)]

    # --- Correctness: the three strategies agree within 2δ ------------
    # (small-suite pipeline with repeats, analyzed through one context)
    agreement_ctx = AnalysisContext(machine, model=model)
    suite_stages = list(small_suite()) + list(small_suite())[:2]
    allocated = {}
    for workload in suite_stages:
        if workload.name not in allocated:
            allocated[workload.name] = allocate_linear_scan(
                workload.function, machine
            ).function
    functions = [allocated[w.name] for w in suite_stages]
    analyses = {
        strategy: agreement_ctx.analyze_pipeline(
            functions, strategy=strategy, delta=DELTA
        )
        for strategy in ("sequential", "composed", "stacked")
    }
    worst_diff = 0.0
    for strategy, analysis in analyses.items():
        assert analysis.converged, strategy
        if strategy == "sequential":
            continue
        for k in range(len(functions)):
            diff = float(np.abs(
                analysis.exit_states[k].temperatures
                - analyses["sequential"].exit_states[k].temperatures
            ).max())
            worst_diff = max(worst_diff, diff)
    assert worst_diff <= 2 * DELTA, worst_diff

    # --- Performance: warm re-analysis vs. sequential per-kernel ------
    def sequential_cold():
        # What a schedule evaluation pays today: per-kernel analyses
        # through a fresh context (the thermal model and its operator
        # caches are shared, allocation is prepaid — the analysis-layer
        # work is what's timed).
        return run_pipeline(
            stages,
            context=AnalysisContext(machine, model=model),
            strategy="sequential",
            delta=DELTA,
            allocator=allocator,
        )

    sequential_s, sequential_report = _best_of(sequential_cold)

    warm_ctx = AnalysisContext(machine, model=model)
    stacked_s, stacked_report = _best_of(
        lambda: run_pipeline(
            stages, context=warm_ctx, strategy="stacked", delta=DELTA,
            allocator=allocator,
        )
    )
    # Warm means warm: the repeats above must have been served from the
    # shared context's identity-keyed caches, not recompiled.
    warm_stats = warm_ctx.stats
    assert warm_stats["pipeline_compiles"] == 1, warm_stats
    assert warm_stats["pipeline_hits"] >= REPEATS - 1, warm_stats
    assert warm_stats["solve_compiles"] == len(workloads), warm_stats
    composed_s, composed_report = _best_of(
        lambda: run_pipeline(
            stages, context=warm_ctx, strategy="composed", delta=DELTA,
            allocator=allocator,
        )
    )
    assert warm_ctx.stats["summary_compiles"] == len(workloads), \
        warm_ctx.stats
    for report in (sequential_report, stacked_report, composed_report):
        assert report.converged

    # Warm pipeline runs agree with the sequential reference too.
    exit_diffs = {
        strategy: abs(
            report.totals()["exit_peak_kelvin"]
            - sequential_report.totals()["exit_peak_kelvin"]
        )
        for strategy, report in (
            ("stacked", stacked_report), ("composed", composed_report)
        )
    }
    assert max(exit_diffs.values()) <= 2 * DELTA, exit_diffs

    stacked_speedup = sequential_s / stacked_s
    composed_speedup = sequential_s / composed_s

    rows = [
        ("sequential (cold)", sequential_report.iterations,
         sequential_s * 1e3, 1.0),
        ("stacked (warm)", stacked_report.iterations,
         stacked_s * 1e3, stacked_speedup),
        ("composed (warm)", composed_report.iterations,
         composed_s * 1e3, composed_speedup),
    ]
    table = format_table(
        ["strategy", "sweeps", "time (ms)", "speedup (x)"], rows
    )
    record_table(
        "E13_pipeline",
        "\n".join([
            banner(
                f"E13 — 10-stage pipeline ({len(set(STAGE_NAMES))} distinct "
                f"kernels, 64-entry RF, δ={DELTA:g})"
            ),
            table,
            "",
            "sequential: per-kernel carry-through, fresh context per run;",
            "stacked: one pipeline-wide affine fixed point, warm cache;",
            "composed: exact summary composition, one solve per distinct "
            "kernel.",
            f"cross-strategy agreement: max |ΔT| = {worst_diff:.2e} K "
            f"(bound 2δ = {2 * DELTA:g} K)",
        ]),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": "repro.bench-pipeline/1",
        "meta": dict(bench_meta),
        "machine": "rf64",
        "delta": DELTA,
        "quick": QUICK,
        "stages": list(STAGE_NAMES),
        "distinct_kernels": len(set(STAGE_NAMES)),
        "agreement": {
            "max_exit_diff_kelvin": worst_diff,
            "bound_kelvin": 2 * DELTA,
        },
        "results": {
            "sequential_cold_seconds": sequential_s,
            "stacked_warm_seconds": stacked_s,
            "composed_warm_seconds": composed_s,
            "sequential_sweeps": sequential_report.iterations,
            "stacked_sweeps": stacked_report.iterations,
        },
        "headline": {
            "stacked_warm_speedup": stacked_speedup,
            "composed_warm_speedup": composed_speedup,
        },
        "pipeline_report": stacked_report.to_dict(),
    }
    with open(RESULTS_DIR / "BENCH_pipeline.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if not QUICK:
        # The PR's headline: warm pipeline re-analysis ≥2× over
        # sequential per-kernel runs, for both warm strategies.
        assert stacked_speedup >= MIN_WARM_SPEEDUP, rows
        assert composed_speedup >= MIN_WARM_SPEEDUP, rows

    benchmark(
        lambda: run_pipeline(
            stages, context=warm_ctx, strategy="stacked", delta=DELTA,
            allocator=allocator,
        )
    )
