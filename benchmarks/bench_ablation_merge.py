"""E8 — ablation: the CFG merge function of the thermal analysis.

The paper's Fig. 2 pseudocode iterates blocks but never says how states
combine where control flow joins.  This reproduction had to choose; the
candidates are element-wise max (conservative), plain mean, and static-
profile frequency-weighted mean (our default).  This bench quantifies
the consequences of that design decision.
"""

from __future__ import annotations

import pytest

from repro.core import TDFAConfig, ThermalDataflowAnalysis, analyze
from repro.regalloc import allocate_linear_scan
from repro.sim import compare_to_emulation
from repro.util import banner, format_table
from repro.workloads import load

WORKLOADS = ["fir", "iir", "sort", "crc32"]
MERGES = ["max", "mean", "freq"]


@pytest.fixture(scope="module")
def merge_rows(machine, emulator):
    rows = []
    corr: dict[str, list[float]] = {m: [] for m in MERGES}
    peak_err: dict[str, list[float]] = {m: [] for m in MERGES}
    for name in WORKLOADS:
        wl = load(name)
        allocation = allocate_linear_scan(wl.function, machine)
        emulation = emulator.run(
            allocation.function, args=wl.args, memory=dict(wl.memory)
        )
        for merge in MERGES:
            result = analyze(allocation.function, machine, delta=0.01, merge=merge)
            report = compare_to_emulation(result.peak_state(), emulation)
            rows.append(
                (
                    name,
                    merge,
                    result.iterations,
                    result.peak_state().peak - 318.15,
                    report.pearson_r,
                    report.peak_error_kelvin,
                )
            )
            corr[merge].append(report.pearson_r)
            peak_err[merge].append(report.peak_error_kelvin)
    return rows, corr, peak_err


def test_e8_merge_ablation(merge_rows, machine, record_table, benchmark):
    rows, corr, peak_err = merge_rows
    table = format_table(
        ["workload", "merge", "iterations", "peak dT (K)", "pearson r",
         "peak err (K)"],
        rows,
    )
    means = format_table(
        ["merge", "mean pearson r", "mean peak err (K)"],
        [
            (m, sum(corr[m]) / len(corr[m]), sum(peak_err[m]) / len(peak_err[m]))
            for m in MERGES
        ],
    )
    record_table(
        "E8_merge_ablation",
        "\n".join([banner("E8 — CFG merge function ablation"), table, "", means]),
    )

    # Shape: every merge converges and correlates; max-merge predicts the
    # highest temperatures (it is the conservative over-approximation).
    by_key = {(r[0], r[1]): r for r in rows}
    for name in WORKLOADS:
        assert by_key[(name, "max")][3] >= by_key[(name, "freq")][3] - 1e-6
    for merge in MERGES:
        assert min(corr[merge]) > 0.5

    wl = load("fir")
    allocated = allocate_linear_scan(wl.function, machine).function
    analysis = ThermalDataflowAnalysis(
        machine=machine, config=TDFAConfig(delta=0.01, merge="max")
    )
    benchmark(lambda: analysis.run(allocated))
