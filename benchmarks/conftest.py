"""Shared bench infrastructure.

Every bench regenerates one experiment from DESIGN.md §4: it computes
the experiment's table, prints it (visible with ``pytest -s``), writes
it to ``benchmarks/results/<experiment>.txt`` for the record, asserts
the *shape* of the paper's claim, and times the core operation through
pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.arch import rf64
from repro.sim import ThermalEmulator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def machine():
    return rf64()


@pytest.fixture(scope="session")
def emulator(machine):
    return ThermalEmulator(machine)


@pytest.fixture(scope="session")
def record_table():
    """Persist an experiment table and echo it to stdout."""

    def _record(experiment: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _record
