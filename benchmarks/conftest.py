"""Shared bench infrastructure.

Every bench regenerates one experiment from DESIGN.md §4: it computes
the experiment's table, prints it (visible with ``pytest -s``), writes
it to ``benchmarks/results/<experiment>.txt`` for the record, asserts
the *shape* of the paper's claim, and times the core operation through
pytest-benchmark.

Every ``BENCH_*.json`` payload additionally carries one shared ``meta``
provenance block (:func:`bench_metadata`): schema of the block itself,
commit, timestamp, host and python/numpy versions — what the trend
store (:mod:`repro.obs.store`) keys per-commit series on, and what
makes two archived results comparable at all.
"""

from __future__ import annotations

import datetime
import pathlib
import platform
import subprocess

import pytest

from repro.arch import rf64
from repro.sim import ThermalEmulator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _commit() -> str:
    """The commit under test: CI env first, then git, else unknown."""
    import os

    for key in ("GITHUB_SHA", "CI_COMMIT_SHA"):
        value = os.environ.get(key)
        if value:
            return value
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_metadata() -> dict:
    """The shared ``meta`` block stamped onto every bench payload."""
    import numpy

    return {
        "schema": "repro.bench-meta/1",
        "commit": _commit(),
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host": platform.node(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


@pytest.fixture(scope="session")
def bench_meta():
    """Session-wide provenance block — one git call per bench run."""
    return bench_metadata()


@pytest.fixture(scope="session")
def machine():
    return rf64()


@pytest.fixture(scope="session")
def emulator(machine):
    return ThermalEmulator(machine)


@pytest.fixture(scope="session")
def record_table():
    """Persist an experiment table and echo it to stdout."""

    def _record(experiment: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _record
