"""E11 — chip-level view: optimizations move heat between units.

Paper §5: the long-term goal is thermal analyses "relating to all parts
of the processor".  On a die holding the RF, the ALU and the D-cache,
this bench re-runs the key §4 transformations and reports the peak
temperature of *each block*, exposing what the RF-only view hides:

* spilling critical variables does not delete their heat — it moves it
  into the D-cache (every spill/reload is a cache access);
* NOP insertion cools the RF *and* the ALU (the whole pipeline idles);
* re-assignment injects no power outside the RF — yet the measured
  temperature table shows the D-cache *warming* anyway, because the
  spreading permutation moves hot registers toward the RF's cache-facing
  edge and heat diffuses across the block boundary.  A genuinely
  chip-level effect no RF-only analysis could see, and an argument for
  the paper's §5 agenda.
"""

from __future__ import annotations

import pytest

from repro.core import TDFAConfig, ThermalDataflowAnalysis
from repro.ir.values import VirtualRegister
from repro.opt import NopInsertionPass, ReassignPass
from repro.regalloc import allocate_linear_scan, insert_spill_code
from repro.thermal import ChipPowerModel, ChipThermalModel
from repro.util import banner, format_table
from repro.workloads import load

WORKLOAD = "iir"


@pytest.fixture(scope="module")
def chip(machine):
    return ChipThermalModel(machine)


def analyze_on_chip(machine, chip, allocated, delta=0.02):
    analysis = ThermalDataflowAnalysis(
        machine=machine,
        model=chip,
        power_model=ChipPowerModel(machine, chip),
        config=TDFAConfig(delta=delta),
    )
    return analysis.run(allocated)


@pytest.fixture(scope="module")
def chip_rows(machine, chip):
    wl = load(WORKLOAD)
    ambient = chip.params.ambient
    rows = []
    stats = {}

    def record(label, allocated):
        result = analyze_on_chip(machine, chip, allocated)
        peak = result.peak_state()
        entry = (
            chip.block_peak(peak, "rf") - ambient,
            chip.block_peak(peak, "alu") - ambient,
            chip.block_peak(peak, "dcache") - ambient,
        )
        stats[label] = entry
        rows.append((label,) + entry)
        return result

    baseline_alloc = allocate_linear_scan(wl.function, machine)
    baseline_result = record("baseline (first-free)", baseline_alloc.function)

    victims = set(sorted(
        (v for v in wl.function.virtual_registers()
         if isinstance(v, VirtualRegister)),
        key=str,
    )[:4])
    spilled = insert_spill_code(wl.function, victims)
    record("spill 4 variables", allocate_linear_scan(spilled, machine).function)

    reassigned, _ = ReassignPass(machine=machine).run(baseline_alloc.function)
    record("reassign (Zhou'08)", reassigned)

    threshold = baseline_result.peak_state().peak - 0.2
    nopped, _ = NopInsertionPass(
        analysis=baseline_result, threshold=threshold, burst=2
    ).run(baseline_alloc.function)
    record("nop insertion", nopped)

    return wl, rows, stats


def test_e11_chip_heat_migration(chip_rows, machine, chip, record_table,
                                 benchmark):
    wl, rows, stats = chip_rows
    table = format_table(
        ["transformation", "RF peak dT (K)", "ALU peak dT (K)",
         "D$ peak dT (K)"],
        rows,
    )
    record_table(
        "E11_chip",
        "\n".join(
            [
                banner(f"E11 — chip-level heat migration ({WORKLOAD})"),
                table,
                "",
                "spilling relocates heat into the D-cache; NOPs idle the",
                "whole pipeline; re-assignment stays inside the RF block.",
            ]
        ),
    )

    base = stats["baseline (first-free)"]
    spill = stats["spill 4 variables"]
    nops = stats["nop insertion"]

    # Spilling heats the cache — the migration the RF-only view misses.
    assert spill[2] > base[2] * 1.2
    # NOPs cool the RF and the ALU (the whole pipeline idles).
    assert nops[0] < base[0]
    assert nops[1] < base[1]

    # Re-assignment must inject *zero additional power* outside the RF —
    # any cache warming in its row is pure cross-block diffusion.  The
    # invariant is on power, not temperature.
    import numpy as np

    baseline_alloc = allocate_linear_scan(wl.function, machine)
    reassigned, _ = ReassignPass(machine=machine).run(baseline_alloc.function)
    cache_cells = chip.layout.block_cells("dcache")

    def cache_power(function):
        pm = ChipPowerModel(machine, chip)
        total = np.zeros(chip.layout.die_geometry.num_registers)
        for inst in function.instructions():
            total += pm.dynamic_power(inst)
        return float(total[cache_cells].sum())

    assert cache_power(reassigned) == pytest.approx(
        cache_power(baseline_alloc.function)
    )

    allocated = allocate_linear_scan(wl.function, machine).function
    benchmark(lambda: analyze_on_chip(machine, chip, allocated, delta=0.05))
