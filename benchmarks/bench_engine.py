"""E12 — analysis engines: stepped loop vs. compiled vs. batched runtime.

Three configurations of the fixed-point engine, measured across the
workload suite plus a ≥200-instruction synthetic kernel:

* ``stepped`` — the paper's literal Fig. 2 per-instruction loop;
* ``compiled (cold)`` — PR 1's engine: per-block affine transfers,
  blockwise Gauss–Seidel sweep, block compilation paid on *every*
  invocation (each run builds its own transfer cache);
* ``batched (warm)`` — the batched analysis runtime: the whole sweep is
  one pre-composed stacked affine map and a shared
  :class:`~repro.core.context.AnalysisContext` serves block transfers,
  composed sweeps and static profiles from cache, so repeated analyses
  pay only the sweep itself.

Asserts the accuracy claim (engines agree within 2·δ), PR 1's headline
(compiled ≥5× over stepped on the big kernel) and this PR's headline
(batched runtime ≥1.5× over PR 1's compiled engine on the big kernel).
Writes ``results/BENCH_engine.json`` so CI can archive the perf
trajectory.  Set ``REPRO_BENCH_QUICK=1`` for the CI smoke variant:
fewer kernels, fewer repeats, and speedups recorded but *not* asserted
— queue-shared runners time too unreliably to gate on wall-clock
ratios (accuracy agreement is still asserted).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core import AnalysisContext, TDFAConfig, ThermalDataflowAnalysis
from repro.regalloc import allocate_linear_scan
from repro.thermal import RFThermalModel
from repro.util import banner, format_table
from repro.workloads import load
from repro.workloads.generators import pressure_program

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
KERNELS = ("fir", "crc32") if QUICK else (
    "fir", "iir", "matmul", "conv3x3", "crc32", "sort"
)
REPEATS = 3 if QUICK else 5
DELTA = 1e-5
#: live_count=24 yields a ~200-instruction loop kernel after allocation.
BIG_KERNEL_LIVE = 24
#: Headline floors — asserted only outside quick mode: shared CI
#: runners time too unreliably to gate on wall-clock ratios, so the
#: smoke job records the numbers without enforcing them.
MIN_COMPILED_SPEEDUP = 5.0
MIN_BATCHED_SPEEDUP = 1.5


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_e12_engine_speedup(machine, record_table, benchmark, bench_meta):
    model = RFThermalModel(machine.geometry, energy=machine.energy)

    functions = {
        name: allocate_linear_scan(load(name).function, machine).function
        for name in KERNELS
    }
    big = pressure_program(BIG_KERNEL_LIVE, iterations=50)
    big_name = f"pressure{BIG_KERNEL_LIVE}"
    functions[big_name] = allocate_linear_scan(big.function, machine).function
    assert functions[big_name].instruction_count() >= 200

    context = AnalysisContext(machine, model=model)
    rows = []
    records = []
    speedups_compiled = {}
    speedups_batched = {}
    for name, function in functions.items():
        # Stepped: the paper's per-instruction loop.
        stepped_analysis = ThermalDataflowAnalysis(
            machine, model=model,
            config=TDFAConfig(delta=DELTA, engine="stepped"),
        )
        stepped_s, stepped = _best_of(lambda: stepped_analysis.run(function))

        # PR 1's compiled engine, cold: a fresh analysis (hence a fresh
        # transfer cache) per invocation, blockwise sweep.
        def compiled_cold():
            return ThermalDataflowAnalysis(
                machine, model=model,
                config=TDFAConfig(delta=DELTA, engine="compiled",
                                  sweep="blockwise"),
            ).run(function)

        compiled_s, compiled = _best_of(compiled_cold)

        # The batched runtime: shared context, composed stacked sweep;
        # repeats after the first are all cache hits.
        batched_s, batched = _best_of(
            lambda: context.analyze(function, delta=DELTA)
        )

        assert stepped.converged and compiled.converged and batched.converged
        worst = max(
            batched.after[key].max_abs_diff(stepped.after[key])
            for key in stepped.after
        )
        assert worst <= 2 * DELTA, name
        assert batched.iterations == compiled.iterations, name

        speedups_compiled[name] = stepped_s / compiled_s
        speedups_batched[name] = compiled_s / batched_s
        rows.append(
            (
                name,
                function.instruction_count(),
                batched.iterations,
                stepped_s * 1e3,
                compiled_s * 1e3,
                batched_s * 1e3,
                speedups_compiled[name],
                speedups_batched[name],
                worst,
            )
        )
        records.append(
            {
                "kernel": name,
                "instructions": function.instruction_count(),
                "sweeps": batched.iterations,
                "stepped_seconds": stepped_s,
                "compiled_cold_seconds": compiled_s,
                "batched_warm_seconds": batched_s,
                "compiled_speedup_vs_stepped": speedups_compiled[name],
                "batched_speedup_vs_compiled": speedups_batched[name],
                "max_diff_kelvin": worst,
            }
        )

    table = format_table(
        ["kernel", "insts", "sweeps", "stepped (ms)", "compiled (ms)",
         "batched (ms)", "compiled/stepped (x)", "batched/compiled (x)",
         "max diff (K)"],
        rows,
    )
    record_table(
        "E12_engine",
        "\n".join(
            [
                banner("E12 — stepped loop vs. compiled blocks vs. batched "
                       f"runtime (64-entry RF, δ={DELTA:g})"),
                table,
                "",
                "compiled: per-block transfers, cache rebuilt per run (PR 1);",
                "batched: one stacked sweep map + shared AnalysisContext —",
                "repeat analyses pay only the sweep, not the compilation.",
            ]
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": "repro.bench-engine/1",
        "meta": dict(bench_meta),
        "machine": "rf64",
        "delta": DELTA,
        "quick": QUICK,
        "big_kernel": big_name,
        "results": records,
        "headline": {
            "compiled_speedup_vs_stepped": speedups_compiled[big_name],
            "batched_speedup_vs_compiled": speedups_batched[big_name],
        },
    }
    with open(RESULTS_DIR / "BENCH_engine.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if not QUICK:
        # PR 1's headline: ≥5× over stepped on the ≥200-instruction kernel.
        assert speedups_compiled[big_name] >= MIN_COMPILED_SPEEDUP, \
            speedups_compiled
        # This PR's headline: the batched runtime beats PR 1's compiled
        # engine by ≥1.5× on the same kernel.
        assert speedups_batched[big_name] >= MIN_BATCHED_SPEEDUP, \
            speedups_batched

    benchmark(lambda: context.analyze(functions[big_name], delta=DELTA))
