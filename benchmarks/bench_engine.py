"""E12 — compiled block-transfer engine vs. the stepped Fig. 2 loop.

The compiled engine pre-composes each basic block's per-instruction
affine steps into one ``(A_B, b_B)`` map and sweeps at block
granularity (:mod:`repro.core.transfer`); the stepped engine is the
paper's literal per-instruction loop.  This bench measures both across
the workload suite plus a ≥200-instruction synthetic kernel, asserts
they agree to within 2·δ, and asserts the headline claim: ≥5× wall-time
speedup on the large kernel.
"""

from __future__ import annotations

import time

from repro.core import TDFAConfig, ThermalDataflowAnalysis
from repro.regalloc import allocate_linear_scan
from repro.thermal import RFThermalModel
from repro.util import banner, format_table
from repro.workloads import load
from repro.workloads.generators import pressure_program

KERNELS = ("fir", "iir", "matmul", "conv3x3", "crc32", "sort")
DELTA = 1e-5
#: live_count=24 yields a ~200-instruction loop kernel after allocation.
BIG_KERNEL_LIVE = 24


def _timed_run(analysis, function, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = analysis.run(function)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_e12_engine_speedup(machine, record_table, benchmark):
    model = RFThermalModel(machine.geometry, energy=machine.energy)

    functions = {
        name: allocate_linear_scan(load(name).function, machine).function
        for name in KERNELS
    }
    big = pressure_program(BIG_KERNEL_LIVE, iterations=50)
    big_name = f"pressure{BIG_KERNEL_LIVE}"
    functions[big_name] = allocate_linear_scan(big.function, machine).function
    assert functions[big_name].instruction_count() >= 200

    rows = []
    speedups = {}
    for name, function in functions.items():
        timings = {}
        results = {}
        for engine in ("compiled", "stepped"):
            analysis = ThermalDataflowAnalysis(
                machine,
                model=model,
                config=TDFAConfig(delta=DELTA, engine=engine),
            )
            timings[engine], results[engine] = _timed_run(analysis, function)
        worst = max(
            results["compiled"].after[key].max_abs_diff(
                results["stepped"].after[key]
            )
            for key in results["stepped"].after
        )
        # Both engines must converge to the same per-instruction states.
        assert results["compiled"].converged and results["stepped"].converged
        assert worst <= 2 * DELTA, name
        speedups[name] = timings["stepped"] / timings["compiled"]
        rows.append(
            (
                name,
                function.instruction_count(),
                results["compiled"].iterations,
                timings["stepped"] * 1e3,
                timings["compiled"] * 1e3,
                speedups[name],
                worst,
            )
        )

    table = format_table(
        ["kernel", "insts", "sweeps", "stepped (ms)", "compiled (ms)",
         "speedup (x)", "max diff (K)"],
        rows,
    )
    record_table(
        "E12_engine",
        "\n".join(
            [
                banner("E12 — compiled block transfers vs. stepped loop "
                       f"(64-entry RF, δ={DELTA:g})"),
                table,
                "",
                "sweep cost drops from O(instructions) to O(blocks) mat-vecs;",
                "block compilation is a one-off amortized over all sweeps.",
            ]
        ),
    )

    # Headline claim: ≥5× on the ≥200-instruction kernel.
    assert speedups[big_name] >= 5.0, speedups

    compiled_analysis = ThermalDataflowAnalysis(
        machine,
        model=model,
        config=TDFAConfig(delta=DELTA, engine="compiled"),
    )
    benchmark(lambda: compiled_analysis.run(functions[big_name]))
