"""E3 — prediction accuracy and cost: analysis vs feedback emulation.

The paper's value proposition (§1): replace the feedback-driven
emulation flow with a compile-time analysis.  For every kernel in the
suite this bench reports how well the analysis's predicted map matches
the emulator's ground truth, and how much cheaper it is.
"""

from __future__ import annotations

import time

import pytest

from repro.core import analyze
from repro.regalloc import allocate_linear_scan
from repro.sim import compare_to_emulation
from repro.util import banner, format_table
from repro.workloads import full_suite


@pytest.fixture(scope="module")
def accuracy_rows(machine, emulator):
    rows = []
    reports = []
    for wl in full_suite():
        allocation = allocate_linear_scan(wl.function, machine)
        started = time.perf_counter()
        analysis = analyze(allocation.function, machine, delta=0.01)
        analysis_seconds = time.perf_counter() - started
        emulation = emulator.run(
            allocation.function, args=wl.args, memory=dict(wl.memory)
        )
        report = compare_to_emulation(
            analysis.peak_state(), emulation, predicted_seconds=analysis_seconds
        )
        reports.append((wl.name, report))
        rows.append(
            (
                wl.name,
                report.pearson_r,
                report.rmse_kelvin,
                report.peak_error_kelvin,
                "yes" if report.hottest_register_match else "no",
                report.speedup,
            )
        )
    return rows, reports


def test_e3_accuracy_vs_emulation(accuracy_rows, machine, record_table, benchmark):
    rows, reports = accuracy_rows
    table = format_table(
        ["workload", "pearson r", "rmse (K)", "peak err (K)", "hottest ok",
         "speedup (x)"],
        rows,
    )
    mean_r = sum(r.pearson_r for _n, r in reports) / len(reports)
    record_table(
        "E3_accuracy",
        "\n".join(
            [
                banner("E3 — analysis vs emulation (ground truth)"),
                table,
                "",
                f"mean pearson r = {mean_r:.3f} over {len(reports)} kernels",
            ]
        ),
    )

    # Shape: strong correlation on loop kernels; hottest register found in
    # the clear majority of the suite.
    assert mean_r > 0.7
    matches = sum(1 for _n, r in reports if r.hottest_register_match)
    assert matches >= len(reports) * 0.6

    from repro.workloads import load

    wl = load("fir")
    allocation = allocate_linear_scan(wl.function, machine)
    benchmark(lambda: analyze(allocation.function, machine, delta=0.01))
