"""E16 — sparse factored pipelines and low-rank incremental updates.

Two claims behind the incremental pipeline engine:

* **Editing one stage does not cost a cold pipeline run** — after an
  in-place single-block edit in one stage, ``invalidate(function,
  blocks=[...])`` marks the block dirty; the next
  ``analyze_pipeline(..., warm_start=True)`` recompiles only that
  block, patches the affected rows of that stage's cached CSR sweep,
  recomposes the pipeline by re-using every stage's frozen
  entry-bottleneck extractor, and restarts the pipeline-wide fixed
  point from the stored converged solution.  On the chip preset this
  is the headline: one-stage-edit re-analysis of a multi-stage
  pipeline ≥5× faster than a cold run (asserted outside quick mode;
  quick mode still asserts the ≥1× floor and that the patch actually
  happened), with the CSR pipeline footprint below the dense one.

* **Single-instruction edits skip the sweep entirely** — an in-place
  opcode swap leaves every linear part of the factored caches
  untouched, so ``context.update_instruction`` applies a rank-style
  offset correction through the kept block-system factorization
  instead of recompiling; the corrected caches agree with a fresh cold
  recompile to 1e-12 suite-wide (asserted, always).

Writes ``results/BENCH_incremental.json``.  Set ``REPRO_BENCH_QUICK=1``
for the CI smoke variant: fewer stages, fewer repeats, wall-clock
floors relaxed (queue-shared runners time too unreliably to gate on
the full ratio; accuracy agreement is still asserted).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core import AnalysisContext
from repro.ir import parse_instruction
from repro.ir.cfg import reverse_postorder
from repro.regalloc import allocate_linear_scan
from repro.util import banner, format_table
from repro.workloads import load

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
#: Pipeline stages — ten distinct kernels at chip scale in the full
#: run, a short chain in the smoke variant.
STAGES = ("matmul", "fir", "conv3x3", "crc32") if QUICK else (
    "dot", "saxpy", "fir", "iir", "matmul",
    "dct8", "conv3x3", "crc32", "histogram", "viterbi",
)
#: Kernels for the suite-wide rank-update exactness sweep.
RANK_KERNELS = ("matmul", "fir") if QUICK else (
    "matmul", "fir", "conv3x3", "crc32", "viterbi", "sort"
)
REPEATS = 2 if QUICK else 3
#: Die-level chip preset at its standard tolerance (matches
#: tests/thermal/test_chip.py and bench_sparse.py).
CHIP_DELTA = 0.01
#: The edited stage sits mid-pipeline so the patch has both upstream
#: context (entry temperatures) and downstream consumers.
EDIT_STAGE = len(STAGES) // 2
#: Headline floor — the full ratio is asserted only outside quick mode;
#: the smoke job still requires incremental to be no slower than cold.
MIN_INCREMENTAL_SPEEDUP = 5.0


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _allocated(name, machine):
    return allocate_linear_scan(load(name).function, machine).function


def _worst_exit_diff(a, b):
    return max(
        x.max_abs_diff(y) for x, y in zip(a.exit_states, b.exit_states)
    )


def test_e16_pipeline_incremental(machine, record_table, benchmark, bench_meta):
    """One-stage edit on a chip-scale pipeline: patch + warm start vs.
    a cold recompile of every stage."""
    stages = [_allocated(name, machine) for name in STAGES]
    edited_fn = stages[EDIT_STAGE]
    edited_block = reverse_postorder(edited_fn)[1]
    alternates = ("r1 = add r2, r3", "r1 = xor r2, r3")

    # Cold: a fresh chip context per run — per-stage block compiles,
    # sweep composition, pipeline composition, block-system solves and
    # the pipeline-wide fixed point from ambient.
    def cold_run():
        return AnalysisContext.for_chip(machine).analyze_pipeline(
            stages, delta=CHIP_DELTA, sweep="sparse"
        )

    cold_seconds, cold = _best_of(cold_run)
    assert cold.converged
    assert cold.stage_sweep_forms == ["sparse"] * len(stages)

    # Incremental: one warm context; each repeat edits one block of the
    # middle stage in place (alternating payloads so every run really
    # is a new edit), marks it dirty, and re-analyzes: only that
    # stage's CSR rows are patched, every extractor is re-used, and the
    # fixed point warm-starts from the stored pipeline solution.
    context = AnalysisContext.for_chip(machine)
    context.analyze_pipeline(stages, delta=CHIP_DELTA, sweep="sparse")
    state = {"flip": 0}

    def incremental_run():
        edited_fn.blocks[edited_block].instructions[0] = parse_instruction(
            alternates[state["flip"]]
        )
        state["flip"] ^= 1
        context.invalidate(edited_fn, blocks=[edited_block])
        return context.analyze_pipeline(
            stages, delta=CHIP_DELTA, sweep="sparse", warm_start=True
        )

    incremental_seconds, incremental = _best_of(incremental_run)
    assert incremental.converged
    stats = context.stats
    assert stats["sweep_patches"] >= REPEATS
    assert stats["pipeline_sweep_patches"] >= REPEATS
    assert stats["sweep_compiles"] == len(set(STAGES))  # originals only
    assert stats["pipeline_compiles"] == 1
    assert stats["pipeline_warm_start_nbytes"] > 0

    # Accuracy: the patched stage rows equal a cold recompile bit for
    # bit, so a cold-initialized run through the patched pipeline
    # reproduces a fresh context's exit states to 1e-12 (checked at
    # tight tolerance, where both runs pin the fixed point).
    via_patched = context.analyze_pipeline(stages, delta=1e-9, sweep="sparse")
    reference = AnalysisContext.for_chip(machine).analyze_pipeline(
        stages, delta=1e-9, sweep="sparse"
    )
    worst = _worst_exit_diff(via_patched, reference)
    assert worst <= 1e-12

    speedup = cold_seconds / incremental_seconds
    assert speedup >= 1.0
    if not QUICK:
        assert speedup >= MIN_INCREMENTAL_SPEEDUP, speedup

    # Memory: the CSR pipeline's held footprint vs. a dense pipeline's.
    dense_context = AnalysisContext.for_chip(machine)
    dense_context.analyze_pipeline(stages, delta=CHIP_DELTA, sweep="batched")
    sparse_nbytes = context.stats["pipeline_nbytes"]
    dense_nbytes = dense_context.stats["pipeline_nbytes"]
    assert sparse_nbytes < dense_nbytes

    table = format_table(
        ["run", "iterations", "seconds", "pipeline cache (KiB)"],
        [
            ("cold", cold.iterations, cold_seconds, dense_nbytes / 1024),
            ("incremental", incremental.iterations, incremental_seconds,
             sparse_nbytes / 1024),
        ],
    )
    record_table(
        "E16_pipeline_incremental",
        "\n".join(
            [
                banner(f"E16 — one-stage edit on a {len(STAGES)}-stage "
                       f"chip pipeline (δ={CHIP_DELTA:g})"),
                table,
                "",
                f"edited: stage {EDIT_STAGE} ({STAGES[EDIT_STAGE]!r}), "
                f"block {edited_block!r}; speedup: {speedup:.1f}x",
                "incremental = recompile 1 block + patch 1 stage's CSR",
                "rows + re-use every extractor + warm-started pipeline",
                "fixed point; cold = fresh context, every stage rebuilt.",
            ]
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": "repro.bench-incremental/1",
        "meta": dict(bench_meta),
        "machine": "rf64",
        "quick": QUICK,
        "pipeline": {
            "stages": list(STAGES),
            "delta": CHIP_DELTA,
            "edited_stage": EDIT_STAGE,
            "edited_block": edited_block,
            "cold_seconds": cold_seconds,
            "cold_iterations": cold.iterations,
            "incremental_seconds": incremental_seconds,
            "incremental_iterations": incremental.iterations,
            "speedup": speedup,
            "max_diff_kelvin": worst,
            "pipeline_nbytes_dense": dense_nbytes,
            "pipeline_nbytes_sparse": sparse_nbytes,
            "nbytes_reduction": 1.0 - sparse_nbytes / dense_nbytes,
            "sweep_patches": stats["sweep_patches"],
            "pipeline_sweep_patches": stats["pipeline_sweep_patches"],
        },
    }
    # The rank-update experiment appends its section below; write the
    # partial payload now so an assertion there still leaves a record.
    with open(RESULTS_DIR / "BENCH_incremental.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    benchmark(incremental_run)


def test_e16_rank_update_exactness(machine, record_table, bench_meta):
    """Suite-wide: factored single-instruction updates vs. cold
    recompiles — the corrected caches agree to 1e-12 and never pay a
    sweep rebuild."""
    alternates = ("r1 = add r2, r3", "r1 = xor r2, r3")
    rows = []
    records = []
    for name in RANK_KERNELS:
        function = _allocated(name, machine)
        rpo = reverse_postorder(function)
        # Never a block's last instruction, so the CFG is untouched and
        # the edit is non-structural.
        block = next(
            nm for nm in rpo if len(function.blocks[nm].instructions) >= 2
        )

        def cold_run(function=function):
            return AnalysisContext.for_chip(machine).analyze(
                function, delta=CHIP_DELTA, sweep="sparse"
            )

        cold_seconds, _ = _best_of(cold_run)

        context = AnalysisContext.for_chip(machine)
        context.analyze(function, delta=CHIP_DELTA, sweep="sparse")
        state = {"flip": 0}

        def update_run(function=function, block=block, state=state):
            function.blocks[block].instructions[0] = parse_instruction(
                alternates[state["flip"]]
            )
            state["flip"] ^= 1
            assert context.update_instruction(function, block, 0)
            return context.analyze(
                function, delta=CHIP_DELTA, sweep="sparse", warm_start=True
            )

        update_seconds, updated = _best_of(update_run)
        assert updated.converged
        assert context.stats["rank_updates"] >= REPEATS
        assert context.stats["rank_update_fallbacks"] == 0
        assert context.stats["sweep_compiles"] == 1
        assert context.stats["sweep_patches"] == 0

        via_update = context.analyze(function, delta=1e-9, sweep="sparse")
        reference = AnalysisContext.for_chip(machine).analyze(
            function, delta=1e-9, sweep="sparse"
        )
        worst = max(
            via_update.block_out[nm].max_abs_diff(reference.block_out[nm])
            for nm in reference.block_out
        )
        assert worst <= 1e-12, name

        rows.append((name, block, cold_seconds * 1e3, update_seconds * 1e3,
                     cold_seconds / update_seconds, worst))
        records.append(
            {
                "kernel": name,
                "edited_block": block,
                "cold_seconds": cold_seconds,
                "update_seconds": update_seconds,
                "speedup": cold_seconds / update_seconds,
                "max_diff_kelvin": worst,
            }
        )

    table = format_table(
        ["kernel", "block", "cold (ms)", "update (ms)", "speedup (x)",
         "max diff (K)"],
        rows,
    )
    record_table(
        "E16_rank_updates",
        "\n".join(
            [
                banner("E16 — factored single-instruction updates "
                       f"(chip preset, δ={CHIP_DELTA:g})"),
                table,
                "",
                "update = offset-only correction through the kept block",
                "and block-system factorizations (no sweep rebuild);",
                "cold = fresh context.  Agreement asserted ≤1e-12.",
            ]
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_incremental.json"
    if path.exists():  # the pipeline experiment writes the base payload
        payload = json.loads(path.read_text())
    else:
        payload = {
            "schema": "repro.bench-incremental/1",
            "meta": dict(bench_meta),
            "machine": "rf64",
            "quick": QUICK,
        }
    payload["rank_updates"] = records
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
