"""F1 — Fig. 1: thermal maps for register assignment policies.

Regenerates the paper's motivating figure: steady-state RF thermal maps
under (a) deterministic first-free order, (b) random, (c) chessboard —
plus this reproduction's additional spreading policies for context.

Paper's claims (asserted below):
* (a) and (b) produce hot spots with steep thermal gradients;
* (c) yields a homogenized temperature map.
"""

from __future__ import annotations

import pytest

from repro.regalloc import allocate_linear_scan, default_policies
from repro.thermal import render_side_by_side, summarize, uniformity
from repro.util import banner, format_table
from repro.workloads import load

WORKLOAD = "fir"


@pytest.fixture(scope="module")
def policy_maps(machine, emulator):
    wl = load(WORKLOAD)
    maps = {}
    for policy in default_policies(seed=1):
        allocation = allocate_linear_scan(wl.function, machine, policy)
        state = emulator.steady_map(allocation.function, memory=dict(wl.memory))
        maps[policy.name] = state
    return wl, maps


def test_fig1_policy_thermal_maps(policy_maps, machine, record_table, benchmark):
    wl, maps = policy_maps
    ambient = 318.15

    rows = []
    for name, state in maps.items():
        s = summarize(state)
        rows.append(
            (
                name,
                s.peak - ambient,
                s.spread,
                s.gradient,
                s.std,
                uniformity(state),
            )
        )
    table = format_table(
        ["policy", "peak dT (K)", "spread (K)", "gradient (K)", "sigma (K)",
         "uniformity"],
        rows,
    )
    fig = render_side_by_side(
        [maps["first-free"], maps["random"], maps["chessboard"]],
        titles=["(a) first-free", "(b) random", "(c) chessboard"],
    )
    record_table(
        "F1_fig1_policies",
        "\n".join(
            [
                banner(f"F1 / Fig.1 — policy thermal maps ({WORKLOAD})"),
                table,
                "",
                fig,
            ]
        ),
    )

    # --- the paper's shape ---
    assert maps["first-free"].max_gradient() > maps["chessboard"].max_gradient()
    assert maps["random"].max_gradient() > maps["chessboard"].max_gradient()
    assert maps["chessboard"].std < maps["first-free"].std
    assert maps["chessboard"].std < maps["random"].std
    assert uniformity(maps["chessboard"]) > uniformity(maps["first-free"])

    # --- timed core: one policy's full map generation ---
    from repro.regalloc import FirstFreePolicy
    from repro.sim import ThermalEmulator

    def run():
        allocation = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
        emulator = ThermalEmulator(machine)
        return emulator.steady_map(allocation.function, memory=dict(wl.memory))

    benchmark(run)
