"""E6 — analysis fidelity vs granularity of the thermal approximation.

Paper §3: *"The thermal state is a continuous function that can only be
approximated, typically as a discrete set of points.  The fidelity of
the analysis will depend on the granularity of the approximation —
increasing the number of points would increase accuracy, but at the cost
of increased computation time."*

The analysis runs on thermal meshes from 1×1 (one node for the whole RF)
to 16×16 (four nodes per register cell); accuracy is measured against
the finest mesh's per-register temperatures.
"""

from __future__ import annotations

import time

import pytest

from repro.core import TDFAConfig, ThermalDataflowAnalysis
from repro.regalloc import allocate_linear_scan
from repro.thermal import RFThermalModel, ThermalGrid, rmse
from repro.util import banner, format_table
from repro.workloads import load

GRIDS = [(1, 1), (2, 2), (4, 4), (8, 8), (16, 16)]
WORKLOAD = "fir"


@pytest.fixture(scope="module")
def granularity_rows(machine):
    wl = load(WORKLOAD)
    allocated = allocate_linear_scan(wl.function, machine).function

    per_grid = {}
    for rows_, cols_ in GRIDS:
        grid = ThermalGrid(machine.geometry, rows_, cols_)
        model = RFThermalModel(machine.geometry, grid=grid, energy=machine.energy)
        analysis = ThermalDataflowAnalysis(
            machine=machine, model=model, config=TDFAConfig(delta=0.01)
        )
        started = time.perf_counter()
        result = analysis.run(allocated)
        seconds = time.perf_counter() - started
        per_grid[(rows_, cols_)] = (result, seconds)

    reference = per_grid[GRIDS[-1]][0].peak_state().register_temperatures()
    rows = []
    errors = {}
    for dims in GRIDS:
        result, seconds = per_grid[dims]
        predicted = result.peak_state().register_temperatures()
        err = rmse(predicted, reference)
        errors[dims] = err
        rows.append(
            (
                f"{dims[0]}x{dims[1]}",
                dims[0] * dims[1],
                err,
                result.peak_state().max_gradient(),
                result.iterations,
                seconds * 1e3,
            )
        )
    return allocated, rows, errors


def test_e6_granularity_tradeoff(granularity_rows, machine, record_table,
                                 benchmark):
    allocated, rows, errors = granularity_rows
    table = format_table(
        ["mesh", "points", "rmse vs 16x16 (K)", "gradient (K)", "iterations",
         "time (ms)"],
        rows,
    )
    record_table(
        "E6_granularity",
        "\n".join(
            [
                banner(f"E6 — granularity vs fidelity ({WORKLOAD})"),
                table,
                "",
                "paper §3: more points = more accuracy, more compute.",
            ]
        ),
    )

    # Shape: error decreases monotonically with refinement...
    assert errors[(1, 1)] > errors[(4, 4)] >= errors[(8, 8)] >= 0.0
    # ...and the 1x1 mesh cannot see any spatial gradient at all.
    assert rows[0][3] == 0.0

    # Timed core: the default 8x8 mesh analysis.
    model = RFThermalModel(machine.geometry, energy=machine.energy)
    analysis = ThermalDataflowAnalysis(
        machine=machine, model=model, config=TDFAConfig(delta=0.01)
    )
    benchmark(lambda: analysis.run(allocated))
