"""E4 — efficacy of each §4 thermal optimization.

For a hot-spot-prone kernel under the first-free policy, applies every
optimization the paper proposes — spilling critical variables, live
range splitting, thermal-aware scheduling, register promotion, NOP
insertion, access-balancing re-assignment — alone and as the full
analysis-driven pipeline, and reports emulated peak ΔT, gradient and the
cycle cost of each.

Paper's claims (asserted):
* re-assignment and thermal scheduling reduce gradient/peak at no cycle
  cost;
* NOP insertion cools the peak but costs cycles directly (why the paper
  permits it "only if no other option ... is feasible");
* the full analysis-driven pipeline beats the baseline decisively.

Honest deviation (recorded, not hidden): *spilling alone under the
first-free policy does not cool the RF in this model*.  In a load/store
architecture every spilled access still moves through a register — the
reload temporaries — and first-free puts those temporaries right back on
the same hot cells, so spilling raises traffic without spreading it.
The paper's "greatest benefit" from spilling materializes only when the
allocator can spread the remaining traffic (as the full pipeline does by
switching to a spreading policy).  EXPERIMENTS.md discusses this.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AllocationPlacement,
    ExactPlacement,
    analyze,
    rank_critical_variables,
)
from repro.opt import (
    NopInsertionPass,
    ReassignPass,
    RegisterPromotionPass,
    SpillCriticalPass,
    SplitLiveRangesPass,
    ThermalAwareCompiler,
    ThermalSchedulePass,
)
from repro.regalloc import FirstFreePolicy, allocate_linear_scan
from repro.util import banner, format_table
from repro.workloads import load

WORKLOAD = "iir"
AMBIENT = 318.15


def emulate(machine, emulator, function, wl):
    result = emulator.run(function, args=wl.args, memory=dict(wl.memory))
    assert result.execution.return_value == wl.expected_return
    return (
        result.steady_state.peak - AMBIENT,
        result.steady_state.max_gradient(),
        result.cycles,
    )


@pytest.fixture(scope="module")
def optimization_rows(machine, emulator):
    wl = load(WORKLOAD)
    baseline_alloc = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
    placement = AllocationPlacement(baseline_alloc, machine.geometry.num_registers)
    baseline_analysis = analyze(wl.function, machine, delta=0.01,
                                placement=placement)
    criticals = rank_critical_variables(baseline_analysis, placement, top_k=3)
    targets = tuple(cv.reg for cv in criticals)

    rows = []
    base_peak, base_grad, base_cycles = emulate(
        machine, emulator, baseline_alloc.function, wl
    )
    rows.append(("baseline (first-free)", base_peak, base_grad, base_cycles))

    def allocate_and_emulate(function, label):
        allocation = allocate_linear_scan(function, machine, FirstFreePolicy())
        rows.append((label,) + emulate(machine, emulator, allocation.function, wl))

    spilled, _ = SpillCriticalPass(targets=targets).run(wl.function)
    allocate_and_emulate(spilled, "spill critical")

    split, _ = SplitLiveRangesPass(targets=targets, chunk=2).run(wl.function)
    allocate_and_emulate(split, "split live ranges")

    scheduled, _ = ThermalSchedulePass().run(wl.function)
    allocate_and_emulate(scheduled, "thermal schedule")

    promoted, _ = RegisterPromotionPass().run(wl.function)
    allocate_and_emulate(promoted, "register promotion")

    reassigned, _ = ReassignPass(machine=machine).run(baseline_alloc.function)
    rows.append(("reassign (Zhou'08)",) + emulate(machine, emulator, reassigned, wl))

    exact_analysis = analyze(baseline_alloc.function, machine, delta=0.01)
    nop_threshold = exact_analysis.peak_state().peak - 0.2
    nopped, _ = NopInsertionPass(
        analysis=exact_analysis, threshold=nop_threshold, burst=2
    ).run(baseline_alloc.function)
    rows.append(("nop insertion",) + emulate(machine, emulator, nopped, wl))

    compiled = ThermalAwareCompiler(machine).compile(wl.function)
    rows.append(
        ("full pipeline",) + emulate(machine, emulator, compiled.allocated, wl)
    )
    return wl, rows


def test_e4_optimization_efficacy(optimization_rows, machine, record_table,
                                  benchmark):
    wl, rows = optimization_rows
    table = format_table(
        ["transformation", "peak dT (K)", "gradient (K)", "cycles"],
        rows,
    )
    record_table(
        "E4_optimizations",
        "\n".join([banner(f"E4 — thermal optimizations ({WORKLOAD})"), table]),
    )

    by_name = {name: (peak, grad, cycles) for name, peak, grad, cycles in rows}
    base_peak, base_grad, base_cycles = by_name["baseline (first-free)"]

    # Cycle-neutral improvements: re-assignment flattens the map,
    # scheduling lowers the peak; neither adds instructions.
    assert by_name["reassign (Zhou'08)"][1] < base_grad
    assert by_name["reassign (Zhou'08)"][2] == base_cycles
    assert by_name["thermal schedule"][0] <= base_peak + 1e-9
    assert by_name["thermal schedule"][2] == base_cycles

    # NOP insertion: cools the peak, costs cycles — the paper's
    # last-resort trade-off, both directions asserted.
    assert by_name["nop insertion"][0] < base_peak
    assert by_name["nop insertion"][2] > base_cycles

    # Spilling costs cycles (memory traffic) — the performance half of
    # the paper's trade-off.  Its thermal half is policy-dependent (see
    # module docstring); only the cost direction is universal.
    assert by_name["spill critical"][2] > base_cycles

    # Splitting alone must never make things worse.
    assert by_name["split live ranges"][0] <= base_peak + 0.05

    # Full pipeline: decisively better gradient than baseline.
    assert by_name["full pipeline"][1] < base_grad

    benchmark(lambda: ThermalAwareCompiler(machine).compile(wl.function))
