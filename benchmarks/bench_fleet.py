"""E15 — control plane: worker-loss retry overhead, event-stream throughput.

PR 9 moved sharded execution behind a worker registry and a retrying
dispatcher (``repro.service.cluster``); this bench prices the two new
moving parts:

* **Retry overhead** — the same small-suite job, once on a healthy
  two-worker fleet and once with a *flaky* third endpoint in the
  roster that accepts connections and hangs up mid-request (the
  deterministic stand-in for a SIGKILLed worker).  Every shard placed
  on the flaky worker is resubmitted to a survivor, so the ratio of
  the two wall times is what one worker loss costs a job — and the
  recovered result must stay bit-identical to the healthy run.
* **Events-stream throughput** — ``repro.service/3`` streaming
  submits interleave per-sweep/per-kernel event frames with the final
  envelope; a long analysis streamed over a real worker socket
  measures frames/second, i.e. what the live-narration channel can
  carry on top of the analysis itself.

Asserts correctness (bit-identical recovery, dead worker in the
failure breakdown, every streamed frame well-formed and in sequence);
overheads are recorded, not gated.  Writes
``results/BENCH_fleet.json`` (schema ``repro.bench-fleet/1``,
documented in README.md) so CI archives the trajectory.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import threading
import time

from repro.service import (
    AnalysisRequest,
    AnalysisService,
    RemoteBackend,
    SubmitRequest,
    SuiteRequest,
    WorkerServer,
)
from repro.service.backends import WorkerClient
from repro.util import banner, format_table
from repro.workloads import small_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
REPEATS = 2 if QUICK else 5
STREAM_REPEATS = 3 if QUICK else 10
DELTA = 0.01
#: A deliberately tight threshold so the streamed analysis runs many
#: sweeps — frames per second needs frames.
STREAM_DELTA = 1e-6


class _FlakyEndpoint:
    """A TCP endpoint that accepts, reads a little, and hangs up —
    every request placed on it dies mid-flight."""

    def __init__(self) -> None:
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self._sock.settimeout(0.2)
        host, port = self._sock.getsockname()[:2]
        self.label = f"{host}:{port}"
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.recv(64)
            finally:
                conn.close()

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._sock.close()


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _thermal(envelope):
    return [
        {key: value for key, value in record.items()
         if key != "wall_time_seconds"}
        for record in envelope.result["report"]["results"]
    ]


def test_e15_fleet_recovery_and_streaming(record_table, benchmark, bench_meta):
    suite_request = SuiteRequest(
        workloads=tuple(wl.name for wl in small_suite()), delta=DELTA
    )
    service = AnalysisService(max_workers=4)
    workers = [WorkerServer().start(), WorkerServer().start()]
    flaky = _FlakyEndpoint()

    healthy_backend = RemoteBackend([w.label for w in workers])
    # max_failures=1: the first mid-request loss marks the endpoint
    # dead, exactly what a SIGKILLed worker looks like to the registry.
    chaos_backend = RemoteBackend(
        [flaky.label] + [w.label for w in workers], max_failures=1
    )

    def run(backend, progress=None):
        envelope = service.submit(
            suite_request, progress=progress, backend=backend
        ).result()
        assert envelope.ok, envelope.error_message()
        return envelope

    try:
        # -- Retry overhead -------------------------------------------
        run(healthy_backend)  # warm workers (cache fill, connects)
        healthy_s, healthy_env = _best_of(
            lambda: run(healthy_backend), REPEATS
        )

        retries = []

        def narrate(event):
            if event.get("event") == "retry":
                retries.append(event)

        def chaos_run():
            # One loss marks the endpoint dead for the rest of the
            # job; resurrect it (the documented restarted-worker
            # rejoin path) so every measured run pays for the kill.
            chaos_backend.registry.heartbeat(flaky.label)
            return run(chaos_backend, progress=narrate)

        chaos_run()  # warm + first kill
        chaos_s, chaos_env = _best_of(chaos_run, REPEATS)
        chaos_runs = REPEATS + 1
        # Every run (warm included) lost at least one shard to the
        # flaky endpoint and resubmitted it.
        assert len(retries) >= chaos_runs

        # Correctness: the lossy run recovered bit-identically, the
        # loss was narrated, and the dead endpoint is in the breakdown
        # with nothing attributed to it.
        assert _thermal(chaos_env) == _thermal(healthy_env)
        assert retries and all(
            event["worker"] == flaky.label for event in retries
        )
        breakdown = {
            row["worker"]: row for row in chaos_env.result["workers"]
        }
        assert breakdown[flaky.label]["state"] == "dead"
        assert breakdown[flaky.label]["kernels"] == 0
        assert breakdown[flaky.label]["shards_failed"] >= 1

        # -- Events-stream throughput ---------------------------------
        # The final envelope of a streaming submit echoes the *inner*
        # request's id, so the outer id must match for the client's
        # correlation check.
        stream_request = SubmitRequest(
            request=AnalysisRequest(
                workload="fir", delta=STREAM_DELTA, request_id="stream-1",
            ).to_dict(),
            stream=True,
            request_id="stream-1",
        )
        client = WorkerClient(workers[0].address)

        def stream_once():
            frames = []
            envelope = client.request(stream_request, on_event=frames.append)
            assert envelope.ok, envelope.error_message()
            return frames, envelope

        try:
            stream_once()  # warm
            stream_s, (frames, stream_env) = _best_of(
                stream_once, STREAM_REPEATS
            )
        finally:
            client.close()
        # Every frame is a well-formed event for this job, in order.
        assert len(frames) >= stream_env.result["iterations"]
        assert all(event["job_id"] == stream_env.job_id
                   for event in frames)
        assert frames[-1] == {
            "job_id": stream_env.job_id, "event": "status",
            "status": "done",
        }
        frames_per_s = len(frames) / stream_s

        # -- Report ---------------------------------------------------
        retry_overhead_x = chaos_s / healthy_s
        rows = [
            ("healthy 2-worker fleet", healthy_s * 1e3, "-"),
            ("1 dead + 2 survivors", chaos_s * 1e3,
             f"{retry_overhead_x:.2f}x"),
        ]
        table = format_table(
            ["fleet", "small suite (ms)", "vs healthy"], rows
        )
        record_table(
            "E15_fleet",
            "\n".join([
                banner(
                    f"E15 — control-plane fleet "
                    f"({len(suite_request.workloads)}-kernel suite, "
                    f"δ={DELTA:g}, mid-request worker loss)"
                ),
                table,
                "",
                f"recovery: {len(retries)} shard resubmission(s) "
                f"across {chaos_runs} lossy runs, merged result "
                "bit-identical to the healthy fleet",
                f"event stream: {len(frames)} frames in "
                f"{stream_s * 1e3:.1f} ms over one worker socket = "
                f"{frames_per_s:,.0f} frames/s",
            ]),
        )

        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "repro.bench-fleet/1",
            "meta": dict(bench_meta),
            "machine": "rf64",
            "delta": DELTA,
            "quick": QUICK,
            "kernels": list(suite_request.workloads),
            "fleet": {
                "workers": 2,
                "flaky_endpoints": 1,
                "max_failures": 1,
            },
            "recovery": {
                "healthy_suite_seconds": healthy_s,
                "chaos_suite_seconds": chaos_s,
                "retry_overhead_x": retry_overhead_x,
                "chaos_runs": chaos_runs,
                "retries_total": len(retries),
                "bit_identical": True,
            },
            "events_stream": {
                "workload": "fir",
                "delta": STREAM_DELTA,
                "frames": len(frames),
                "seconds": stream_s,
                "frames_per_second": frames_per_s,
            },
        }
        with open(RESULTS_DIR / "BENCH_fleet.json", "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

        benchmark(lambda: run(healthy_backend))
    finally:
        healthy_backend.close()
        chaos_backend.close()
        flaky.close()
        for worker in workers:
            worker.close()
        service.close()
