"""Quickstart: analyze the thermal state of a small kernel.

Run:  python examples/quickstart.py

Walks the core API end to end: write a function in the textual IR,
register-allocate it, run the thermal data flow analysis (the paper's
Fig. 2 algorithm), and inspect the per-instruction thermal states.
"""

from repro import analyze, rf64
from repro.core import ExactPlacement, format_result, rank_critical_variables
from repro.ir import parse_function
from repro.regalloc import allocate_linear_scan
from repro.thermal import render_map

SOURCE = """
func @sumsq(%n) {
entry:
  %acc = li 0
  %i = li 0
  jump head
head:
  %c = cmplt %i, %n
  br %c, body, exit
body:
  %sq = mul %i, %i
  %acc = add %acc, %sq
  %i = add %i, 1
  jump head
exit:
  ret %acc
}
"""


def main() -> None:
    machine = rf64()  # 8x8 register file, 1 GHz, 90nm-flavoured energy model

    # 1. Parse and register-allocate.
    function = parse_function(SOURCE)
    allocation = allocate_linear_scan(function, machine)
    print(f"allocated @{function.name}: "
          f"{sorted(allocation.registers_used())} used, "
          f"{allocation.spill_count} spilled\n")

    # 2. The thermal data flow analysis (paper Fig. 2): a thermal state
    #    after every instruction, iterated until the per-instruction
    #    change drops below delta.  sweep="auto" (the default) stores
    #    the stacked sweep map CSR when it is big and sparse enough to
    #    pay off — pass sweep="sparse" to force the CSR engine, which
    #    runs the same iteration trace on O(nnz) work per sweep.
    result = analyze(allocation.function, machine, delta=0.01, sweep="auto")

    # 3. Inspect.
    placement = ExactPlacement(machine.geometry.num_registers)
    criticals = rank_critical_variables(result, placement, top_k=3)
    print(format_result(result, criticals=criticals))

    # 4. Individual states are addressable per (block, instruction index).
    state = result.state_after("body", 1)  # after the add
    print("state after body[1] (the hot accumulate):")
    print(render_map(state))


if __name__ == "__main__":
    main()
