"""Pre-allocation predictive analysis — the paper's "wild and crazy" part.

Run:  python examples/predictive_analysis.py [workload]

§4: "the more ambitious possibility ... would be to develop predictive
analyses that would be performed at earlier stages of compilation, i.e.,
before register allocation and assignment."

This example runs the thermal analysis on a *virtual-register* function
— no physical placement exists yet — using a placement model that
simulates what the allocator's policy will do.  It then identifies the
critical variables and prints the transformation plan, all before a
single register has been assigned; finally it verifies the prediction
against a post-assignment analysis.
"""

import sys

from repro import analyze, rf64
from repro.core import (
    PolicyPlacement,
    evaluate_rules,
    rank_critical_variables,
)
from repro.regalloc import FirstFreePolicy, allocate_linear_scan
from repro.sim import ThermalEmulator, compare_to_emulation
from repro.workloads import load


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fib"
    machine = rf64()
    workload = load(name)
    print(f"workload: {workload.name} — {workload.description}\n")

    # --- BEFORE ALLOCATION ------------------------------------------------
    # The only knowledge available: liveness-derived allocation order and
    # the policy the allocator will use.  PolicyPlacement simulates it.
    placement = PolicyPlacement(
        workload.function, machine,
        policy_factory=lambda seed: FirstFreePolicy(),
        samples=1,
    )
    prediction = analyze(
        workload.function, machine, delta=0.01, placement=placement
    )
    print(f"pre-allocation analysis: converged={prediction.converged} "
          f"after {prediction.iterations} iterations")

    criticals = rank_critical_variables(prediction, placement, top_k=4)
    print("\npredicted critical variables (before any register exists):")
    for cv in criticals:
        print(f"  {cv}")

    plan = evaluate_rules(prediction, placement, machine)
    print()
    print(plan)

    # --- VALIDATION -------------------------------------------------------
    # Now actually allocate and emulate: was the prediction right?
    allocation = allocate_linear_scan(
        workload.function, machine, FirstFreePolicy()
    )
    emulation = ThermalEmulator(machine).run(
        allocation.function, args=workload.args, memory=dict(workload.memory)
    )
    report = compare_to_emulation(prediction.peak_state(), emulation)
    print("\nvalidation against the feedback emulator (ground truth):")
    print(f"  field correlation r = {report.pearson_r:.3f}")
    print(f"  rmse               = {report.rmse_kelvin:.3f} K")
    print(f"  hottest register   = "
          f"{'correctly identified' if report.hottest_register_match else 'missed'}")


if __name__ == "__main__":
    main()
