"""The service API: declarative requests over one shared runtime.

Run:  python examples/service_api.py

The paper's pitch is thermal prediction as a *compiler service* — cheap
enough to consult at every decision point.  This example drives the
request/response front-end the way a scheduler (or the CLI, or the
``python -m repro serve`` pipe) would:

1. execute single requests and read the uniform ResultEnvelope;
2. watch the shared-context cache counters amortize across requests;
3. submit a batch concurrently through the service thread pool;
4. drive the v2 job protocol: submit -> progress events -> result;
5. turn the analyzer into an optimizer: a ScheduleRequest searches
   stage orderings and returns the argmin with full evidence;
6. round-trip a request and an envelope through their JSON wire form.
"""

from repro.service import (
    AnalysisRequest,
    AnalysisService,
    CompileRequest,
    EmulateRequest,
    PipelineRequest,
    ResultEnvelope,
    ScheduleRequest,
    SuiteRequest,
    request_from_json,
)

service = AnalysisService(max_workers=4)

# 1. One analysis, one envelope: headline numbers + cache stats.
envelope = service.execute(AnalysisRequest(workload="fir", delta=0.05))
result = envelope.result
print(
    f"analyze fir: converged={result['converged']} "
    f"iterations={result['iterations']} "
    f"peak dT={result['peak_delta_kelvin']:.2f}K "
    f"[{result['engine']} engine, "
    f"{envelope.wall_time_seconds * 1e3:.1f} ms]"
)

# 2. The same request again: identical input objects, so the shared
#    context serves every block transfer from cache.
again = service.execute(AnalysisRequest(workload="fir", delta=0.05))
stats = again.context_stats
print(
    f"again:       block compiles={stats['block_compiles']} "
    f"block hits={stats['block_hits']} "
    f"operator hits={stats['operator_hits']} "
    f"(analyses={stats['analyses']})"
)

# 3. Different request kinds, same runtime: the pipeline's analyses and
#    the emulator's RC integration reuse the model built in step 1.
compiled = service.execute(CompileRequest(workload="fir"))
summary = compiled.result["summary"]
print(
    f"compile fir: {summary['instructions_before']:.0f} -> "
    f"{summary['instructions_after']:.0f} instructions, "
    f"peak {summary['peak_before']:.2f}K -> {summary['peak_after']:.2f}K"
)
emulated = service.execute(
    EmulateRequest(workload="fir", compare_analysis=True, delta=0.05)
)
accuracy = emulated.result["analysis"]
print(
    f"emulate fir: r={accuracy['pearson_r']:.3f} "
    f"rmse={accuracy['rmse_kelvin']:.3f}K "
    f"speedup={accuracy['speedup']:.0f}x over emulation"
)

# 4. A concurrent batch through the thread pool: many requests, one
#    locked context, results identical to a serial run.
batch = [
    AnalysisRequest(workload=name, delta=0.05, request_id=name)
    for name in ("fib", "crc32", "iir", "dct8")
]
envelopes = service.map(batch)
for env in envelopes:
    print(
        f"batch {env.request.request_id:>6}: "
        f"peak dT={env.result['peak_delta_kelvin']:.2f}K "
        f"gradient={env.result['gradient_kelvin']:.2f}K"
    )

# 5. The job protocol: submit -> progress -> result.  A JobHandle has
#    a stable job_id, a live status, a cancel() switch, and a
#    replayable stream of progress events — per-sweep δ for analyses,
#    per-kernel completion for suites — that a scheduler can watch
#    while the job runs.
job = service.submit(SuiteRequest(quick=True, delta=0.05))
kernel_events = [
    event for event in job.events() if event["event"] == "kernel"
]
envelope = job.result()
print(
    f"job:         {job.job_id} [{job.status()}] "
    f"{len(kernel_events)} kernel events "
    f"(last: {kernel_events[-1]['name']}), "
    f"converged={envelope.converged} via {envelope.backend} backend"
)

# 6. A whole pipeline of kernels as one thermal program: the entry
#    state of each stage is the exit state of the previous one.  The
#    stacked strategy materializes every stage's states; running it
#    again is served from the context's pipeline cache, and the
#    composed strategy evaluates the same chain via exact affine
#    summaries — O(1) per repeated kernel.
pipeline = PipelineRequest(stages=("fib", "crc32", "fib", "dct8", "fib"))
first = service.execute(pipeline)
totals = first.result["report"]["totals"]
print(
    f"pipeline:    {totals['stages']:.0f} stages "
    f"({totals['distinct_kernels']:.0f} distinct), "
    f"exit dT={totals['exit_delta_kelvin']:.2f}K "
    f"[{first.wall_time_seconds * 1e3:.1f} ms cold]"
)
warm = service.execute(pipeline)
composed = service.execute(
    PipelineRequest(stages=("fib", "crc32", "fib", "dct8", "fib"),
                    strategy="composed")
)
agree = abs(
    warm.result["report"]["totals"]["exit_peak_kelvin"]
    - composed.result["report"]["totals"]["exit_peak_kelvin"]
)
print(
    f"warm:        {warm.wall_time_seconds * 1e3:.1f} ms "
    f"(pipeline hits={warm.context_stats['pipeline_hits']}, "
    f"solve hits={warm.context_stats['solve_hits']}); "
    f"stacked vs composed |d exit peak|={agree:.2e}K"
)

# 7. The optimizer loop closed: a ScheduleRequest searches stage
#    orderings for the coolest schedule, scoring every candidate
#    through cached summaries.  submit -> batch events -> argmin with
#    full pipeline evidence: the same watch-while-it-runs shape as any
#    other job.
schedule_job = service.submit(ScheduleRequest(
    stages=("fib", "crc32", "fir", "iir"), strategy="exhaustive",
    batch=8,
))
batch_events = [
    event for event in schedule_job.events() if event["event"] == "batch"
]
report = schedule_job.result().result["report"]
print(
    f"schedule:    argmin {'->'.join(report['best_names'])} "
    f"@ {report['best_score']:.2f}K "
    f"(identity {report['identity_score']:.2f}K, "
    f"{report['candidates_evaluated']} candidates in "
    f"{len(batch_events)} batches, "
    f"evidence converged={report['evidence']['converged']})"
)

# 8. The JSON wire form: what `python -m repro serve` speaks over a
#    pipe and `python -m repro worker` over a socket — one request and
#    one envelope per line.
wire_request = request_from_json(
    '{"kind": "analyze", "workload": "fib", "delta": 0.05}'
)
wire_envelope = ResultEnvelope.from_json(
    service.execute(wire_request).to_json()
)
print(
    f"wire:        {wire_envelope.schema} ok={wire_envelope.ok} "
    f"converged={wire_envelope.converged}"
)

service.close()
