"""Multi-kernel thermal reasoning with affine function summaries.

Run:  python examples/kernel_pipeline.py

The paper's long-term goal (§5) is "comprehensive data flow thermal
analyses".  This example shows the compositional extension this
reproduction adds: each kernel's converged analysis is an affine map
``T_exit = A·T_in + b`` that can be extracted once and then composed, so
the thermal behaviour of a whole media pipeline (here fib → crc32 →
fib, imagine conv → entropy-code → checksum) is evaluated with mat-vecs
instead of re-running the analysis per schedule permutation.

The example extracts summaries for two kernels, composes them into a
pipeline, verifies the composition against a direct chained analysis,
and uses the summary's fixed point to answer a question the direct
analysis cannot answer cheaply: what steady temperature does the
pipeline settle at if it runs forever?
"""

import time

from repro.arch import rf16
from repro.core import (
    TDFAConfig,
    ThermalDataflowAnalysis,
    compose_pipeline,
    summarize_function,
)
from repro.regalloc import allocate_linear_scan
from repro.thermal import RFThermalModel, ThermalState, render_map
from repro.workloads import load


def main() -> None:
    machine = rf16()  # 4x4 RF keeps the summary extraction instant
    model = RFThermalModel(machine.geometry, energy=machine.energy)

    kernels = {}
    for name in ("fib", "crc32"):
        wl = load(name)
        kernels[name] = allocate_linear_scan(wl.function, machine).function

    print("extracting affine summaries (one-time cost per kernel)...")
    summaries = {}
    for name, func in kernels.items():
        started = time.perf_counter()
        summaries[name] = summarize_function(func, machine, model=model)
        elapsed = time.perf_counter() - started
        s = summaries[name]
        print(f"  {name:6s} extracted in {elapsed * 1e3:6.1f} ms — "
              f"contraction {s.contraction_factor():.4f}, "
              f"ambient peak {s.ambient_peak:.2f} K")

    # Compose the pipeline fib -> crc32 -> fib.
    pipeline = compose_pipeline(
        [summaries["fib"], summaries["crc32"], summaries["fib"]]
    )
    print(f"\npipeline summary: {pipeline.function_name}")

    # Verify against the direct chained analysis.
    analysis = ThermalDataflowAnalysis(
        machine=machine, model=model, config=TDFAConfig(delta=0.002)
    )
    state = model.ambient_state()
    started = time.perf_counter()
    for name in ("fib", "crc32", "fib"):
        state = analysis.run(kernels[name], entry_state=state).exit_state()
    direct_ms = (time.perf_counter() - started) * 1e3

    started = time.perf_counter()
    predicted = pipeline.apply(model.ambient_state())
    composed_ms = (time.perf_counter() - started) * 1e3

    print(f"  direct chained analyses : exit peak {state.peak:.3f} K "
          f"({direct_ms:.1f} ms)")
    print(f"  composed summary        : exit peak {predicted.peak:.3f} K "
          f"({composed_ms:.3f} ms)")
    print(f"  max difference          : {state.max_abs_diff(predicted):.4f} K")

    # Something only the summary gives cheaply: the steady schedule.
    steady = ThermalState(model.grid, pipeline.fixed_point())
    print("\nsteady state of running the pipeline forever:")
    print(render_map(steady))


if __name__ == "__main__":
    main()
