"""The full thermal-aware compilation pipeline, verified by emulation.

Run:  python examples/thermal_pipeline.py [workload]

Compiles a kernel twice — plain first-free allocation vs the
analysis-driven thermal-aware pipeline (paper §4: the analysis result
"conducts the compilation process") — then runs *both* binaries on the
thermal emulator to verify that the predicted improvement is real and
that program semantics are untouched.
"""

import sys

from repro import ThermalAwareCompiler, rf64
from repro.regalloc import FirstFreePolicy, allocate_linear_scan
from repro.sim import ThermalEmulator
from repro.thermal import render_side_by_side
from repro.util import format_table
from repro.workloads import load


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "iir"
    machine = rf64()
    workload = load(name)
    print(f"workload: {workload.name} — {workload.description}\n")

    # Baseline compilation.
    baseline = allocate_linear_scan(
        workload.function, machine, FirstFreePolicy()
    )

    # Thermal-aware compilation: analyze → rules → transform → reallocate.
    compiler = ThermalAwareCompiler(machine)
    optimized = compiler.compile(workload.function)

    print("the analysis-derived plan:")
    print(optimized.plan)
    print()
    for report in optimized.pass_reports:
        print(f"  {report}")
    print()

    # Ground-truth verification on the emulator.
    emulator = ThermalEmulator(machine)
    before = emulator.run(
        baseline.function, args=workload.args, memory=dict(workload.memory)
    )
    after = emulator.run(
        optimized.allocated, args=workload.args, memory=dict(workload.memory)
    )
    assert before.execution.return_value == after.execution.return_value, (
        "optimization must not change program semantics"
    )

    rows = [
        (
            "baseline (first-free)",
            before.steady_state.peak - 318.15,
            before.steady_state.max_gradient(),
            before.cycles,
        ),
        (
            "thermal-aware pipeline",
            after.steady_state.peak - 318.15,
            after.steady_state.max_gradient(),
            after.cycles,
        ),
    ]
    print(format_table(
        ["compilation", "peak dT (K)", "gradient (K)", "cycles"], rows
    ))
    print()
    print(render_side_by_side(
        [before.steady_state, after.steady_state],
        titles=["baseline", "thermal-aware"],
    ))
    print(f"\nreturn value (both): {after.execution.return_value}")


if __name__ == "__main__":
    main()
