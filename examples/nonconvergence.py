"""Non-convergence of the analysis: thermal runaway detection.

Run:  python examples/nonconvergence.py

§4: "if the analysis does not converge after a reasonable number of
iterations ... this suggests that the thermal state of the program may
be too difficult to predict at compile time ... the program could be
re-optimized so that its thermal state becomes more predictable."

With a purely linear thermal model the Fig. 2 iteration provably
converges (the per-cycle transfer is a contraction), so to exhibit the
paper's non-convergence case this example enables temperature-dependent
leakage — the physically real feedback loop behind thermal runaway.  The
CRC-32 kernel hammers its accumulator register every cycle; on a leaky
process corner that one cell is *locally* supercritical: its own heating
raises its leakage faster than the network can drain it, the analysis
states grow without bound, and the iteration-budget detector fires.

The example then follows the paper's prescription — re-optimize for
predictability.  NOP insertion duty-cycles the hot cell's power below
the critical threshold, and the re-analysis converges.
"""

from repro.arch import EnergyModel, MachineDescription, RegisterFileGeometry
from repro.core import TDFAConfig, ThermalDataflowAnalysis
from repro.opt import NopInsertionPass
from repro.regalloc import allocate_linear_scan
from repro.sim import Interpreter
from repro.workloads import load

#: A leaky process corner: modest leakage at reference temperature, but a
#: steep exponential slope (beta = 0.6 1/K).  Globally stable, locally
#: supercritical under a hammered register cell.
LEAKY_CORNER = EnergyModel(leakage_power=1e-4, leakage_temp_coeff=0.6)


def run_analysis(machine, function, max_iterations=300):
    analysis = ThermalDataflowAnalysis(
        machine=machine,
        config=TDFAConfig(delta=0.001, max_iterations=max_iterations),
    )
    return analysis.run(function)


def main() -> None:
    machine = MachineDescription(
        name="rf64-leaky",
        geometry=RegisterFileGeometry(rows=8, cols=8),
        energy=LEAKY_CORNER,
    )
    workload = load("crc32")
    print(f"workload: {workload.name} — {workload.description}")
    allocated = allocate_linear_scan(workload.function, machine).function

    print("\nanalysis with leakage feedback beta = 0.6 1/K ...")
    result = run_analysis(machine, allocated)
    print(f"  converged        = {result.converged}")
    print(f"  iterations       = {result.iterations}")
    print(f"  last sweep delta = {result.final_delta:.4g} K")
    assert not result.converged, "expected thermal runaway"
    print("  -> the detector fired: thermal state unpredictable at compile")
    print("     time (the paper's §4 outcome).")

    print("\npaper's prescription: re-optimize for predictability.")
    print("inserting cool-down NOPs at the predicted-hot sites ...")
    nop_pass = NopInsertionPass(analysis=result, threshold=330.0, burst=6)
    cooled, report = nop_pass.run(allocated)
    print(f"  {report}")

    result2 = run_analysis(machine, cooled)
    print(f"\nre-analysis: converged = {result2.converged} "
          f"after {result2.iterations} iterations")
    assert result2.converged
    print(f"  predicted peak now {result2.peak_state().peak:.1f} K — "
          "the thermal state is predictable again")

    # The performance price of predictability (the trade-off §4 warns of).
    before = Interpreter(machine=machine).run(
        allocated, memory=dict(workload.memory)
    )
    after = Interpreter(machine=machine).run(
        cooled, memory=dict(workload.memory)
    )
    assert before.return_value == after.return_value == workload.expected_return
    print(f"\ncycles: {before.cycles} -> {after.cycles} "
          f"(+{100 * (after.cycles / before.cycles - 1):.0f}% — why the paper "
          "allows NOPs only as a last resort)")


if __name__ == "__main__":
    main()
