"""Reproduce the paper's Fig. 1: thermal maps of assignment policies.

Run:  python examples/fig1_thermal_maps.py [workload]

Compiles the same kernel under (a) deterministic first-free order,
(b) random choice and (c) the chessboard pattern, runs each through the
feedback-driven thermal emulator (interpreter + RC network), and renders
the three steady-state maps side by side — the reproduction of the
figure that motivates the whole paper.
"""

import sys

from repro import rf64
from repro.regalloc import (
    ChessboardPolicy,
    FirstFreePolicy,
    RandomPolicy,
    allocate_linear_scan,
)
from repro.sim import ThermalEmulator
from repro.thermal import render_side_by_side, summarize
from repro.util import format_table
from repro.workloads import load


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fir"
    machine = rf64()
    emulator = ThermalEmulator(machine)
    workload = load(name)
    print(f"workload: {workload.name} — {workload.description}\n")

    policies = [
        ("(a) first-free", FirstFreePolicy()),
        ("(b) random", RandomPolicy(seed=1)),
        ("(c) chessboard", ChessboardPolicy()),
    ]
    states, rows = [], []
    for title, policy in policies:
        allocation = allocate_linear_scan(workload.function, machine, policy)
        state = emulator.steady_map(
            allocation.function, args=workload.args, memory=dict(workload.memory)
        )
        states.append(state)
        s = summarize(state)
        rows.append((title, s.peak - 318.15, s.gradient, s.std))

    print(render_side_by_side(states, titles=[t for t, _ in policies]))
    print()
    print(format_table(
        ["policy", "peak dT (K)", "max gradient (K)", "sigma (K)"], rows
    ))
    print()
    print("paper §2: (a) and (b) show hot spots with steep gradients;")
    print("(c) homogenizes the map by spreading accesses over the surface.")


if __name__ == "__main__":
    main()
